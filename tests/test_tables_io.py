"""Unit tests for CSV table IO."""

import pytest

from repro.exceptions import TableError
from repro.tables.io import (
    load_table_csv,
    save_table_csv,
    table_from_csv_text,
    table_to_csv_text,
)


class TestCsvText:
    def test_parse_basic(self):
        table = table_from_csv_text("T", "a,b\n1,x\n2,y\n")
        assert table.columns == ("a", "b")
        assert table.rows == (("1", "x"), ("2", "y"))

    def test_parse_with_keys(self):
        table = table_from_csv_text("T", "a,b\n1,x\n2,x\n", keys=[("a",)])
        assert table.keys == (("a",),)

    def test_header_only_rejected(self):
        with pytest.raises(TableError):
            table_from_csv_text("T", "a,b\n")

    def test_quoted_cells_with_commas(self):
        table = table_from_csv_text("T", 'a,b\n"x,y",z\n')
        assert table.rows == (("x,y", "z"),)

    def test_ragged_row_too_short_names_line_number(self):
        with pytest.raises(TableError, match=r"line 3 has 1 cells.*2 columns"):
            table_from_csv_text("T", "a,b\n1,x\n2\n")

    def test_ragged_row_too_long_names_line_number(self):
        with pytest.raises(TableError, match=r"line 2 has 3 cells.*2 columns"):
            table_from_csv_text("T", "a,b\n1,x,extra\n2,y\n")

    def test_ragged_line_number_counts_blank_lines(self):
        # The blank line is line 3; the ragged record after it is line 4.
        with pytest.raises(TableError, match=r"line 4 has 1 cells"):
            table_from_csv_text("T", "a,b\n1,x\n\nbad\n")

    def test_ragged_line_number_spans_multiline_quoted_fields(self):
        # The quoted record covers lines 2-3, so the ragged record is the
        # user's line 4, not CSV record number 3.
        with pytest.raises(TableError, match=r"line 4 has 1 cells"):
            table_from_csv_text("T", 'a,b\n"x\ny",z\nbad\n')

    def test_error_names_the_table(self):
        with pytest.raises(TableError, match="'Prices'"):
            table_from_csv_text("Prices", "a,b\n1\n")

    def test_round_trip(self):
        table = table_from_csv_text("T", "a,b\n1,x\n2,y\n")
        assert table_from_csv_text("T", table_to_csv_text(table)) == table


class TestCsvFiles:
    def test_save_and_load(self, tmp_path):
        table = table_from_csv_text("Prices", "item,price\npen,2\nbook,10\n")
        path = tmp_path / "Prices.csv"
        save_table_csv(table, path)
        loaded = load_table_csv(path)
        assert loaded == table  # name defaults to the file stem

    def test_load_with_explicit_name(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("a\nx\n", encoding="utf-8")
        assert load_table_csv(path, name="Custom").name == "Custom"
