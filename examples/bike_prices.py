#!/usr/bin/env python3
"""Paper Example 5: looking up with a *concatenated* key.

The BikePrices table keys on "Honda125"-style strings, but the
spreadsheet has the bike name and engine cc in separate columns.  The
semantic language learns Select(Price, BikePrices, Bike = Concat(v1, v2))
from a single example -- a transformation outside both plain FlashFill
(no tables) and plain lookup languages (no concatenation of keys).

Run:  python examples/bike_prices.py
"""

from repro import Catalog, Table, synthesize


def main() -> None:
    bike_prices = Table(
        "BikePrices",
        ["Bike", "Price"],
        [
            ("Ducati100", "10,000"),
            ("Ducati125", "12,500"),
            ("Ducati250", "18,000"),
            ("Honda125", "11,500"),
            ("Honda250", "19,000"),
        ],
        keys=[("Bike",)],
    )

    program = synthesize(
        [(("Honda", "125"), "11,500")],
        catalog=Catalog([bike_prices]),
    )

    print("Learned from ONE example:")
    print(" ", program.source())
    print(" ", program.describe())
    print()
    for state in (("Ducati", "100"), ("Honda", "250"), ("Ducati", "250")):
        print(f"  {state} -> {program(state)}")


if __name__ == "__main__":
    main()
