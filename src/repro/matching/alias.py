"""Synonym matching from per-catalog alias tables.

A catalog opts in by carrying a table named ``Synonyms`` (any casing):
each row's cells are mutually synonymous spellings ("IBM",
"IBM Corp.", "International Business Machines").  ``Catalog`` exposes
the row groups as ``alias_groups()``; this matcher equates a query with
every *stored* member of its group.  Membership is by canonical form,
so "ibm corp." still finds the group, at alias confidence.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.matching.base import Match, Matcher, ValueUniverse, register_matcher
from repro.matching.canonical import canonicalize

#: Confidence of synonym hits: the mapping is curated (a real table in
#: the catalog) so it outranks fuzzy guesses, but the spellings are
#: genuinely different strings, so it stays below canonical's 0.9.
ALIAS_CONFIDENCE = 0.85

#: Table names (canonicalized) recognized as synonym tables.
ALIAS_TABLE_NAMES = ("synonyms", "aliases")


def groups_from_rows(rows) -> Dict[str, Tuple[str, ...]]:
    """``{canonical form: (row cells...)}`` over every synonym-table row.

    A cell appearing in several rows maps to the union of its groups, in
    row order, so lookups stay deterministic.
    """
    groups: Dict[str, Tuple[str, ...]] = {}
    for row in rows:
        cells = tuple(cell for cell in row if cell)
        for cell in cells:
            key = canonicalize(cell)
            have = groups.get(key, ())
            merged = have + tuple(c for c in cells if c not in have)
            groups[key] = merged
    return groups


class AliasMatcher(Matcher):
    """Stored values synonymous with the query per the catalog's table."""

    name = "alias"

    def match(self, query: str, universe: ValueUniverse) -> List[Match]:
        groups = universe.alias_groups()
        if not groups:
            return []
        group = groups.get(canonicalize(query), ())
        return [
            Match(value, self.name, ALIAS_CONFIDENCE)
            for value in group
            if value != query and value in universe
        ]


register_matcher("alias", AliasMatcher)
