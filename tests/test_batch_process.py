"""``run_batch(executor="process")`` vs sequential: identical, ordered.

The process pool builds one ``Synthesizer`` per worker (catalog pickled
once per worker, not per task) and ships results back as catalog-free
program payloads rebuilt against the parent's catalog, so every field a
caller can observe must match the sequential run -- in the same order.
Unpicklable catalogs/tasks must silently fall back to the thread pool.
"""

import pytest

from repro.api import Synthesizer
from repro.benchsuite import all_benchmarks
from repro.exceptions import NoProgramFoundError, SynthesisError


def result_key(result):
    return (
        result.task.examples,
        result.language,
        [
            (c.rank, c.score, c.provenance, str(c.program), c.program.num_inputs)
            for c in result.programs
        ],
        result.consistent_count,
        result.structure_size,
    )


@pytest.fixture(scope="module")
def batch():
    """A mixed batch over one catalog: distinct tasks so order is testable."""
    benches = [b for b in all_benchmarks() if not b.background][:1]
    bench = benches[0]
    engine = Synthesizer(bench.catalog())
    tasks = [
        list(bench.rows[:2]),
        list(bench.rows[1:3]),
        list(bench.rows[:3]),
        list(bench.rows[2:4]),
    ]
    return engine, tasks, bench


class TestProcessExecutor:
    def test_identical_to_and_ordered_like_sequential(self, batch):
        engine, tasks, _ = batch
        sequential = engine.run_batch(tasks, workers=None)
        processed = engine.run_batch(tasks, workers=2, executor="process")
        assert [result_key(r) for r in processed] == [
            result_key(r) for r in sequential
        ]

    def test_rebuilt_programs_serve_against_parent_catalog(self, batch):
        engine, tasks, bench = batch
        processed = engine.run_batch(tasks, workers=2, executor="process")
        rows = [inputs for inputs, _ in bench.rows]
        sequential = engine.run_batch(tasks, workers=None)
        for proc, seq in zip(processed, sequential):
            assert proc.fill(rows) == seq.fill(rows)
            assert proc.program.catalog is engine.catalog

    def test_return_errors_slots_match_sequential(self, batch):
        engine, tasks, _ = batch
        # An unsatisfiable task: same input, contradictory outputs.
        state = tasks[0][0][0]
        bad = [(state, "xx"), (state, "yy")]
        mixed = [tasks[0], bad, tasks[1]]
        processed = engine.run_batch(
            mixed, workers=2, executor="process", return_errors=True
        )
        assert result_key(processed[0]) == result_key(
            engine.synthesize(tasks[0])
        )
        assert isinstance(processed[1], SynthesisError)
        assert result_key(processed[2]) == result_key(engine.synthesize(tasks[1]))

    def test_error_aborts_without_return_errors(self, batch):
        engine, tasks, _ = batch
        state = tasks[0][0][0]
        bad = [(state, "xx"), (state, "yy")]
        with pytest.raises(NoProgramFoundError):
            engine.run_batch([tasks[0], bad], workers=2, executor="process")

    def test_unpicklable_catalog_falls_back_to_threads(self, batch):
        engine, tasks, bench = batch
        expected = [result_key(r) for r in engine.run_batch(tasks, workers=None)]
        tainted = Synthesizer(bench.catalog())
        tainted.catalog._unpicklable = lambda: None  # pickling now fails
        assert not tainted._batch_is_picklable([])
        results = tainted.run_batch(tasks, workers=2, executor="process")
        assert [result_key(r) for r in results] == expected

    def test_unknown_executor_rejected(self, batch):
        engine, tasks, _ = batch
        with pytest.raises(ValueError):
            engine.run_batch(tasks, workers=2, executor="greenlet")

    def test_workers_one_is_sequential_regardless_of_executor(self, batch):
        engine, tasks, _ = batch
        sequential = engine.run_batch(tasks, workers=None)
        one = engine.run_batch(tasks, workers=1, executor="process")
        assert [result_key(r) for r in one] == [result_key(r) for r in sequential]


class TestFallbackReason:
    """The batch result says which lane ran and why it fell back."""

    def test_process_success_reports_no_fallback(self, batch):
        engine, tasks, _ = batch
        result = engine.run_batch(tasks, workers=2, executor="process")
        assert result.executor_used == "process"
        assert result.fallback_reason is None

    def test_sequential_and_thread_lanes_tagged(self, batch):
        engine, tasks, _ = batch
        assert engine.run_batch(tasks, workers=None).executor_used == "sequential"
        threaded = engine.run_batch(tasks, workers=2, executor="thread")
        assert threaded.executor_used == "thread"
        assert threaded.fallback_reason is None

    def test_unpicklable_catalog_names_the_culprit(self, batch, caplog):
        import logging

        _, tasks, bench = batch
        tainted = Synthesizer(bench.catalog())
        tainted.catalog._unpicklable = lambda: None
        with caplog.at_level(logging.WARNING, logger="repro.batch"):
            result = tainted.run_batch(tasks, workers=2, executor="process")
        assert result.executor_used == "thread"
        assert "not picklable" in result.fallback_reason
        assert any("fell back to threads" in r.message for r in caplog.records)

    def test_unpicklable_tasks_name_the_culprit(self, batch):
        engine, tasks, _ = batch

        # A task carrying a payload that refuses to pickle.
        class Evil(str):
            def __reduce__(self):
                raise TypeError("nope")

        poisoned = [tasks[0], [((Evil("x"),), "y")]]
        result = engine.run_batch(poisoned, workers=2, executor="process",
                                  return_errors=True)
        assert result.executor_used == "thread"
        assert "tasks are not picklable" in result.fallback_reason

    def test_storage_backed_catalog_reason(self, batch):
        _, tasks, bench = batch
        tainted = Synthesizer(bench.catalog())

        class StorageLike(type(tainted.catalog)):
            storage_backed = True

        # The engine copies construction-time catalogs, so flag the
        # engine's own snapshot the way StorageCatalog would be.
        tainted.catalog.__class__ = StorageLike
        result = tainted.run_batch(tasks, workers=2, executor="process")
        assert result.executor_used == "thread"
        assert "storage-backed" in result.fallback_reason
