"""Catalog changefeed + proactive revalidation (the PR-9 tentpole).

Every catalog mutation path flows through one versioned feed per
catalog: strictly monotonic, gap-free ``(seq, old_fingerprint,
new_fingerprint, diff)`` transitions, durable under ``--storage
sqlite``, long-pollable over ``GET /catalogs/<name>/changes`` on both
front ends.  The revalidation subsystem rides the feed: stored
artifacts are rebound (grow-only), relearned (from persisted examples)
or marked stale with the exact diff -- so ``name@version`` refs keep
serving across catalog churn instead of springing 409s.
"""

import json
import socket
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, HTTPServer

import pytest

from repro.exceptions import ChangefeedRangeError, ReproError
from repro.service import (
    CatalogRegistry,
    ProgramStore,
    SynthesisService,
    create_async_server,
    create_server,
)
from repro.service.changefeed import snapshot_diff
from repro.service.revalidate import WebhookNotifier
from repro.tables.catalog import Catalog
from repro.tables.table import Table


def codes_table(rows=(("a", "alpha"), ("b", "bravo"))):
    return Table("Codes", ["k", "v"], [list(r) for r in rows], keys=[("k",)])


def codes_catalog(rows=(("a", "alpha"), ("b", "bravo"))):
    return Catalog([codes_table(rows)])


LOOKUP_EXAMPLES = [(("a",), "alpha"), (("b",), "bravo")]


# ---------------------------------------------------------------------------
class TestFeedCore:
    def test_sequences_are_monotonic_gap_free_and_chained(self):
        """Register + table add + row append = seq 1,2,3 with each event's
        old fingerprint equal to its predecessor's new fingerprint."""
        registry = CatalogRegistry()
        registry.register("c", codes_catalog())
        registry.add_table("c", Table("Extra", ["x", "y"], [["1", "2"]]))
        registry.append_rows("c", "Codes", [["c", "charlie"]])
        head, events = registry.feed.events_since("c", 0)
        assert head == 3
        assert [e["seq"] for e in events] == [1, 2, 3]
        assert [e["kind"] for e in events] == ["register", "table", "rows"]
        assert events[0]["old_fingerprint"] is None
        for previous, current in zip(events, events[1:]):
            assert current["old_fingerprint"] == previous["new_fingerprint"]
        assert events[-1]["new_fingerprint"] == registry.get("c").fingerprint()

    def test_diffs_name_what_changed(self):
        registry = CatalogRegistry()
        registry.register("c", codes_catalog())
        registry.append_rows("c", "Codes", [["c", "charlie"]])
        registry.register("c", Catalog([Table("Other", ["a"], [["1"]])]))
        _, events = registry.feed.events_since("c", 0)
        grow = events[1]["diff"]
        assert grow["grow_only"] is True
        assert grow["tables_changed"] == {"Codes": {"rows_appended": 1}}
        destroy = events[2]["diff"]
        assert destroy["grow_only"] is False
        assert destroy["tables_added"] == ["Other"]
        assert destroy["tables_removed"] == ["Codes"]

    def test_rewrite_is_not_grow_only(self):
        """Same row count, different bytes: the prefix check catches it."""
        old = codes_catalog([("a", "alpha"), ("b", "bravo")])
        new = codes_catalog([("a", "alpha"), ("b", "BRAVO")])
        diff = snapshot_diff(old, new)
        assert diff["grow_only"] is False
        assert diff["tables_changed"] == {"Codes": {"rewritten": True}}

    def test_since_past_head_raises_with_head(self):
        registry = CatalogRegistry()
        registry.register("c", codes_catalog())
        with pytest.raises(ChangefeedRangeError) as caught:
            registry.feed.events_since("c", 99)
        assert caught.value.head == 1
        assert caught.value.since == 99

    def test_resume_from_a_cursor(self):
        registry = CatalogRegistry()
        registry.register("c", codes_catalog())
        registry.append_rows("c", "Codes", [["c", "charlie"]])
        head, events = registry.feed.events_since("c", 1)
        assert head == 2
        assert [e["seq"] for e in events] == [2]
        head, events = registry.feed.events_since("c", 2)
        assert events == []

    def test_wait_returns_on_new_event(self):
        registry = CatalogRegistry()
        registry.register("c", codes_catalog())

        def append_soon():
            time.sleep(0.2)
            registry.append_rows("c", "Codes", [["c", "charlie"]])

        threading.Thread(target=append_soon, daemon=True).start()
        start = time.monotonic()
        head, events = registry.feed.wait("c", 1, timeout=10.0)
        assert time.monotonic() - start < 5.0
        assert [e["seq"] for e in events] == [2]

    def test_listener_errors_never_break_mutations(self):
        registry = CatalogRegistry()

        def bad_listener(event, catalog):
            raise RuntimeError("boom")

        registry.feed.add_listener(bad_listener)
        registry.register("c", codes_catalog())
        registry.append_rows("c", "Codes", [["c", "charlie"]])
        assert registry.feed.head("c") == 2


# ---------------------------------------------------------------------------
class TestDurableFeed:
    def test_feed_survives_sqlite_restart_gap_free(self, tmp_path):
        """Sequences keep counting across a --storage sqlite restart and
        the full chain (including pre-restart events) stays readable."""
        root = tmp_path / "cats"
        registry = CatalogRegistry(root=root, storage="sqlite")
        registry.register("c", [codes_table()])
        registry.append_rows("c", "Codes", [["c", "charlie"]])
        first_head = registry.feed.head("c")
        assert first_head == 2
        registry.close()

        reopened = CatalogRegistry(root=root, storage="sqlite")
        reopened.get("c")  # lazy load seeds the feed from changefeed.db
        assert reopened.feed.head("c") == first_head
        reopened.append_rows("c", "Codes", [["d", "delta"]])
        head, events = reopened.feed.events_since("c", 0)
        assert head == 3
        assert [e["seq"] for e in events] == [1, 2, 3]
        for previous, current in zip(events, events[1:]):
            assert current["old_fingerprint"] == previous["new_fingerprint"]
        reopened.close()

    def test_memory_storage_feed_is_ephemeral(self, tmp_path):
        root = tmp_path / "cats"
        registry = CatalogRegistry(root=root, storage="sqlite")
        registry.register("c", [codes_table()])
        registry.close()
        assert (root / "c" / "changefeed.db").exists()


# ---------------------------------------------------------------------------
class TestExamplesPersistence:
    def test_learn_save_persists_examples(self, tmp_path):
        service = SynthesisService(
            codes_catalog(), store=ProgramStore(tmp_path / "store")
        )
        try:
            service.learn(LOOKUP_EXAMPLES, save_as="lookup")
            stored = service.store.get("lookup")
            assert stored.examples == [
                (("a",), "alpha"),
                (("b",), "bravo"),
            ]
        finally:
            service.close()

    def test_legacy_artifacts_without_examples_still_load(self, tmp_path):
        """Pre-migration artifacts (no examples block) read as None --
        revalidation degrades to the stale marker instead of crashing."""
        service = SynthesisService(
            codes_catalog(), store=ProgramStore(tmp_path / "store")
        )
        try:
            service.learn(LOOKUP_EXAMPLES, save_as="lookup")
            path = next(
                (tmp_path / "store" / "lookup").glob("v*.json")
            )
            payload = json.loads(path.read_text(encoding="utf-8"))
            del payload["store"]["examples"]
            path.write_text(json.dumps(payload), encoding="utf-8")
            stored = service.store.get("lookup")
            assert stored.examples is None
        finally:
            service.close()

    def test_unchanged_relearn_does_not_grow_the_store(self, tmp_path):
        service = SynthesisService(
            codes_catalog(), store=ProgramStore(tmp_path / "store")
        )
        try:
            service.learn(LOOKUP_EXAMPLES, save_as="lookup")
            service.learn(LOOKUP_EXAMPLES, save_as="lookup")
            assert service.store.versions("lookup") == [1]
        finally:
            service.close()


# ---------------------------------------------------------------------------
class TestRevalidation:
    def make_service(self, tmp_path):
        service = SynthesisService(store=ProgramStore(tmp_path / "store"))
        service.registry.register("people", codes_catalog())
        return service

    def test_grow_only_append_rebinds_in_place(self, tmp_path):
        service = self.make_service(tmp_path)
        try:
            service.learn(LOOKUP_EXAMPLES, save_as="lookup", catalog="people")
            old_info = service.store.get("lookup").catalog_info
            service.registry.append_rows("people", "Codes", [["c", "charlie"]])
            assert service.revalidator.wait_idle(timeout=30.0)
            stored = service.store.get("lookup", 1)
            assert stored.catalog_info["fingerprint"] != old_info["fingerprint"]
            assert stored.stale is None
            stats = service.revalidator.stats()
            assert stats["rebound"] >= 1
            # The old ref serves the appended row with zero 409s.
            assert service.fill("lookup@1", [["c"]], catalog="people") == [
                "charlie"
            ]
        finally:
            service.close()

    def test_destructive_change_relearns_from_examples(self, tmp_path):
        service = self.make_service(tmp_path)
        try:
            service.learn(LOOKUP_EXAMPLES, save_as="lookup", catalog="people")
            # Rewrite the table: same mapping still holds for the
            # examples, but the original rows are gone (not a prefix).
            service.registry.register(
                "people",
                codes_catalog([("z", "zulu"), ("b", "bravo"), ("a", "alpha")]),
            )
            assert service.revalidator.wait_idle(timeout=30.0)
            stored = service.store.get("lookup", 1)
            assert stored.stale is None
            assert service.revalidator.stats()["relearned"] >= 1
            assert service.fill("lookup@1", [["z"]], catalog="people") == [
                "zulu"
            ]
        finally:
            service.close()

    def test_unsalvageable_drift_marks_stale_with_the_diff(self, tmp_path):
        service = self.make_service(tmp_path)
        try:
            service.learn(LOOKUP_EXAMPLES, save_as="lookup", catalog="people")
            # Two conflicting examples and no table that maps them: the
            # relearn fails, so the artifact is marked with the drift.
            service.registry.register(
                "people", Catalog([Table("Other", ["x"], [["1"]])])
            )
            assert service.revalidator.wait_idle(timeout=30.0)
            stored = service.store.get("lookup", 1)
            assert stored.stale is not None
            assert stored.stale["changes"] == ["table 'Codes' was removed"]
            assert service.revalidator.stats()["stale"] >= 1
            with pytest.raises(ReproError):
                service.fill("lookup@1", [["a"]], catalog="people")
        finally:
            service.close()

    def test_stats_expose_feed_lag_and_counters(self, tmp_path):
        service = self.make_service(tmp_path)
        try:
            service.learn(LOOKUP_EXAMPLES, save_as="lookup", catalog="people")
            service.registry.append_rows("people", "Codes", [["c", "charlie"]])
            assert service.revalidator.wait_idle(timeout=30.0)
            stats = service.stats()
            reval = stats["revalidation"]
            assert reval["enabled"] is True
            assert reval["processed"] == reval["events"]
            assert reval["lag"] == 0
            assert reval["last_seq"]["people"] == service.registry.feed.head(
                "people"
            )
            assert stats["changefeed"]["people"]["head"] >= 2
        finally:
            service.close()


# ---------------------------------------------------------------------------
class _HookHandler(BaseHTTPRequestHandler):
    status = 200
    received = None

    def do_POST(self):
        length = int(self.headers.get("Content-Length", 0))
        body = self.rfile.read(length)
        type(self).received.append(json.loads(body))
        self.send_response(type(self).status)
        self.end_headers()

    def log_message(self, *args):  # noqa: D102 -- silence test noise
        pass


@pytest.fixture()
def hook_server():
    class Handler(_HookHandler):
        received = []

    httpd = HTTPServer(("127.0.0.1", 0), Handler)
    threading.Thread(target=httpd.serve_forever, daemon=True).start()
    try:
        yield Handler, f"http://127.0.0.1:{httpd.server_address[1]}/hook"
    finally:
        httpd.shutdown()
        httpd.server_close()


class TestWebhooks:
    def test_events_are_delivered_as_json_posts(self, hook_server):
        handler, url = hook_server
        service = SynthesisService(codes_catalog())
        try:
            service.add_change_webhook(url)
            service.registry.append_rows(
                "default", "Codes", [["c", "charlie"]]
            )
            assert service.webhooks.wait_idle(timeout=10.0)
            assert len(handler.received) == 1
            event = handler.received[0]
            assert event["kind"] == "rows"
            assert event["diff"]["grow_only"] is True
            assert service.webhooks.stats()["delivered"] == 1
        finally:
            service.close()

    def test_failures_retry_with_backoff_then_count(self, hook_server):
        handler, url = hook_server
        handler.status = 500
        notifier = WebhookNotifier()
        notifier.BACKOFF_BASE = 0.01  # keep the test fast
        notifier.add(url)
        try:
            notifier.on_event({"seq": 1, "catalog": "c"}, None)
            assert notifier.wait_idle(timeout=10.0)
            stats = notifier.stats()
            assert stats["failed"] == 1
            assert stats["retries"] == notifier.RETRIES - 1
            assert stats["delivered"] == 0
            # Every attempt reached the hook: retries were real.
            assert len(handler.received) == notifier.RETRIES
        finally:
            notifier.close()

    def test_unreachable_hook_never_blocks_the_mutation(self):
        service = SynthesisService(codes_catalog())
        try:
            # A TEST-NET address nothing answers on: delivery can only
            # fail, and only after the mutation has long returned.
            service.webhooks.TIMEOUT = 0.2
            service.webhooks.BACKOFF_BASE = 0.01
            service.add_change_webhook("http://192.0.2.1:9/hook")
            start = time.monotonic()
            service.registry.append_rows(
                "default", "Codes", [["c", "charlie"]]
            )
            assert time.monotonic() - start < 2.0
            assert service.registry.get("default").table("Codes").num_rows == 3
        finally:
            service.close()


# ---------------------------------------------------------------------------
def boot(server):
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return thread


def http_get(base, path):
    try:
        with urllib.request.urlopen(base + path, timeout=40) as reply:
            return reply.status, json.loads(reply.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


def http_post(base, path, payload):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as reply:
            return reply.status, json.loads(reply.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


TRANSPORTS = [
    pytest.param(create_server, id="threaded"),
    pytest.param(create_async_server, id="async"),
]


@pytest.mark.parametrize("factory", TRANSPORTS)
class TestChangesEndpoint:
    @pytest.fixture()
    def served(self, factory, tmp_path):
        service = SynthesisService(
            codes_catalog(), store=ProgramStore(tmp_path / "store")
        )
        server = factory(service, port=0)
        thread = boot(server)
        host, port = server.server_address[:2]
        try:
            yield service, f"http://{host}:{port}"
        finally:
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()
            service.close()

    def test_plain_poll_and_resume(self, served):
        service, base = served
        status, body = http_get(base, "/catalogs/default/changes?since=0")
        assert status == 200
        assert body["head"] == 1
        assert body["events"][0]["kind"] == "register"
        status, body = http_get(base, "/catalogs/default/changes?since=1")
        assert status == 200 and body["events"] == []

    def test_since_past_head_is_416_with_head(self, served):
        service, base = served
        status, body = http_get(base, "/catalogs/default/changes?since=7")
        assert status == 416
        assert body["head"] == 1 and body["since"] == 7
        assert "resubscribe" in body["error"]

    def test_unknown_catalog_is_404(self, served):
        service, base = served
        status, body = http_get(base, "/catalogs/nope/changes?since=0")
        assert status == 404

    def test_long_poll_wakes_on_append(self, served):
        service, base = served

        def append_soon():
            time.sleep(0.3)
            service.registry.append_rows(
                "default", "Codes", [["c", "charlie"]]
            )

        threading.Thread(target=append_soon, daemon=True).start()
        start = time.monotonic()
        status, body = http_get(
            base, "/catalogs/default/changes?since=1&wait=15"
        )
        elapsed = time.monotonic() - start
        assert status == 200
        assert [e["kind"] for e in body["events"]] == ["rows"]
        assert elapsed < 10.0

    def test_sse_streams_frames_until_limit(self, served):
        service, base = served
        service.registry.append_rows("default", "Codes", [["c", "charlie"]])
        host_port = base[len("http://") :].split(":")
        with socket.create_connection(
            (host_port[0], int(host_port[1])), timeout=20
        ) as sock:
            sock.sendall(
                b"GET /catalogs/default/changes?since=0&sse=1&limit=2 "
                b"HTTP/1.1\r\nHost: x\r\n\r\n"
            )
            raw = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                raw += chunk
        head, _, payload = raw.partition(b"\r\n\r\n")
        assert b" 200 OK" in head
        assert b"Content-Type: text/event-stream" in head
        frames = [f for f in payload.split(b"\n\n") if f]
        assert len(frames) == 2
        for index, frame in enumerate(frames, start=1):
            lines = frame.split(b"\n")
            assert lines[0] == b"id: %d" % index
            assert lines[1] == b"event: change"
            event = json.loads(lines[2][len(b"data: ") :])
            assert event["seq"] == index

    def test_zero_409s_on_old_refs_under_concurrent_appends(self, served):
        """The acceptance gate: grow-only appends racing versioned fills
        never produce a StaleProgramError on either transport."""
        service, base = served
        status, body = http_post(
            base,
            "/learn",
            {"examples": [list(e) for e in LOOKUP_EXAMPLES], "save": "lookup"},
        )
        assert status == 200, body

        def do_fill(_):
            return http_post(
                base, "/fill", {"program": "lookup@1", "rows": [["a"]]}
            )

        def do_append(index):
            return http_post(
                base,
                "/catalogs/default/rows",
                {"table": "Codes", "rows": [[f"x{index}", f"val{index}"]]},
            )

        with ThreadPoolExecutor(max_workers=8) as executor:
            fills = [executor.submit(do_fill, i) for i in range(16)]
            appends = [executor.submit(do_append, i) for i in range(8)]
            for future in appends:
                status, body = future.result(timeout=60)
                assert status == 200, body
            for future in fills:
                status, body = future.result(timeout=60)
                assert status == 200, body
                assert body["outputs"] == ["alpha"]
        assert service.revalidator.wait_idle(timeout=30.0)
        status, body = http_post(
            base, "/fill", {"program": "lookup@1", "rows": [["x3"]]}
        )
        assert status == 200 and body["outputs"] == ["val3"]


# ---------------------------------------------------------------------------
class TestWatchCli:
    def test_watch_once_prints_events_as_json_lines(self, capsys):
        from repro.cli import main

        service = SynthesisService(codes_catalog())
        server = create_server(service, port=0)
        thread = boot(server)
        host, port = server.server_address[:2]
        try:
            service.registry.append_rows(
                "default", "Codes", [["c", "charlie"]]
            )
            code = main(
                [
                    "catalog",
                    "watch",
                    "--url",
                    f"http://{host}:{port}",
                    "--once",
                    "default",
                ]
            )
            assert code == 0
            lines = [
                json.loads(line)
                for line in capsys.readouterr().out.strip().splitlines()
            ]
            assert [e["seq"] for e in lines] == [1, 2]
            assert lines[1]["diff"]["grow_only"] is True
        finally:
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()
            service.close()
