"""Figure 11 metrics for Du: expression counting and structure size.

Counting follows the k-bounded denotation (see
:mod:`repro.lookup.measure`): a select consumes one unit of nesting budget,
and dags do not (they are syntactic glue).  The mutual recursion
node -> select -> predicate dag -> node is memoized on (node, budget), so
the whole count is polynomial in the structure size -- the numbers
themselves are the astronomical ones of Figure 11(a) (Python integers).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.lookup.dstruct import GenSelect, NodeStore, VarEntry
from repro.lookup.measure import structure_size as lookup_structure_size
from repro.semantic.dstruct import SemanticStructure
from repro.syntactic.dag import Atom, ConstAtom, Dag, RefAtom, SubStrAtom
from repro.syntactic.positions import count_position_exprs, position_set_size


def count_expressions(structure: SemanticStructure) -> int:
    """|[[Du]]|: the Figure 11(a) metric."""
    store = structure.store
    memo: Dict[Tuple[int, int], int] = {}

    def count_node(node: int, budget: int) -> int:
        key = (node, budget)
        cached = memo.get(key)
        if cached is not None:
            return cached
        memo[key] = 0  # break same-budget self-reference defensively
        total = 0
        for entry in store.progs[node]:
            if isinstance(entry, VarEntry):
                total += 1
                continue
            if budget <= 0:
                continue
            for predicates in entry.cond.keys:
                key_total = 1
                for predicate in predicates:
                    if predicate.dag is None:
                        options = (1 if predicate.constant is not None else 0) + (
                            count_node(predicate.node, budget - 1)
                            if predicate.node is not None
                            else 0
                        )
                    else:
                        options = count_dag(predicate.dag, budget - 1)
                    key_total *= options
                    if key_total == 0:
                        break
                total += key_total
        memo[key] = total
        return total

    def count_dag(dag: Dag, budget: int) -> int:
        return dag.count_paths(lambda atom: count_atom(atom, budget))

    def count_atom(atom: Atom, budget: int) -> int:
        if isinstance(atom, ConstAtom):
            return 1
        if isinstance(atom, RefAtom):
            return count_node(atom.source, budget)
        return (
            count_node(atom.source, budget)
            * count_position_exprs(atom.p1)
            * count_position_exprs(atom.p2)
        )

    return count_dag(structure.dag, store.depth_limit)


def atom_size(atom: Atom) -> int:
    """Terminal symbols of one dag atom."""
    if isinstance(atom, ConstAtom):
        return 1
    if isinstance(atom, RefAtom):
        return 1
    return 1 + position_set_size(atom.p1) + position_set_size(atom.p2)


def dag_size(dag: Dag) -> int:
    """Terminal symbols of one dag."""
    return dag.structure_size(atom_size)


def structure_size(structure: SemanticStructure) -> int:
    """The Figure 11(b) metric: node store + top dag, shared parts once."""
    return lookup_structure_size(structure.store, dag_sizer=dag_size) + dag_size(
        structure.dag
    )
