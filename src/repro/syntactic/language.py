"""The standalone Ls language: adapter, measures, ranking, enumeration.

This wires the generic Dag machinery to *variable* sources: source id i
resolves to input variable ``v_{i+1}``, which counts as a single concrete
expression.  The semantic language reuses the same Dag code with lookup
nodes as sources (see :mod:`repro.semantic`).
"""

from __future__ import annotations

from itertools import product as cartesian_product
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.api.registry import register_backend
from repro.config import DEFAULT_CONFIG, SynthesisConfig
from repro.core.base import Expression, InputState
from repro.core.exprs import Var
from repro.core.formalism import LanguageAdapter
from repro.syntactic.ast import Concatenate, ConstStr, SubStr
from repro.syntactic.dag import Atom, ConstAtom, Dag, RefAtom, SubStrAtom
from repro.syntactic.generate import generate_dag
from repro.syntactic.intersect import equal_source_merge, intersect_dags
from repro.syntactic.positions import (
    best_position_expr,
    count_position_exprs,
    enumerate_position_exprs,
    position_set_size,
)


def assemble_concatenation(parts: Sequence[Expression]) -> Expression:
    """Top-level expression from chosen atomic parts (es := Concatenate | f)."""
    if not parts:
        return ConstStr("")
    if len(parts) == 1:
        return parts[0]
    return Concatenate(parts)


@register_backend("syntactic", "Ls")
class SyntacticLanguage:
    """GenerateStr/Intersect plus measures for pure Ls."""

    name = "Ls"
    requires_catalog = False

    def __init__(self, config: SynthesisConfig = DEFAULT_CONFIG) -> None:
        self.config = config

    # -- synthesis ------------------------------------------------------
    def generate(self, state: InputState, output: str) -> Optional[Dag]:
        sources = [(index, value) for index, value in enumerate(state)]
        return generate_dag(sources, output, self.config)

    def intersect(self, first: Dag, second: Dag) -> Optional[Dag]:
        return intersect_dags(
            first,
            second,
            equal_source_merge,
            lazy=self.config.use_lazy_intersection,
            use_cache=self.config.use_intersection_cache,
        )

    def is_empty(self, dag: Dag) -> bool:
        return not dag.has_path()

    def adapter(self) -> LanguageAdapter[Dag]:
        return LanguageAdapter(
            name=self.name,
            generate=self.generate,
            intersect=self.intersect,
            is_empty=self.is_empty,
        )

    # -- measures (Figure 11 metrics) ------------------------------------
    def _atom_count(self, atom: Atom) -> int:
        if isinstance(atom, ConstAtom) or isinstance(atom, RefAtom):
            return 1
        return count_position_exprs(atom.p1) * count_position_exprs(atom.p2)

    def _atom_size(self, atom: Atom) -> int:
        if isinstance(atom, ConstAtom) or isinstance(atom, RefAtom):
            return 1
        return 1 + position_set_size(atom.p1) + position_set_size(atom.p2)

    def count_expressions(self, dag: Dag) -> int:
        """Number of concrete Ls expressions the dag represents."""
        return dag.count_paths(self._atom_count)

    def structure_size(self, dag: Dag) -> int:
        """Terminal-symbol size of the dag."""
        return dag.structure_size(self._atom_size)

    # -- ranking ----------------------------------------------------------
    def _atom_best(self, atom: Atom) -> Optional[Tuple[float, Expression]]:
        weights = self.config.weights
        if isinstance(atom, ConstAtom):
            cost = weights.const_atom_base + weights.const_atom_per_char * len(atom.text)
            return (cost, ConstStr(atom.text))
        if isinstance(atom, RefAtom):
            return (weights.ref_atom + weights.var_expr, Var(atom.source))
        cost1, p1 = best_position_expr(atom.p1, weights)
        cost2, p2 = best_position_expr(atom.p2, weights)
        cost = weights.substr_atom + weights.var_expr + cost1 + cost2
        return (cost, SubStr(Var(atom.source), p1, p2))

    def best_program(self, dag: Dag) -> Optional[Expression]:
        """The top-ranked Ls expression, or ``None`` when the dag is empty."""
        result = dag.best_path(self._atom_best, self.config.weights.edge_base)
        if result is None:
            return None
        return assemble_concatenation(result[1])

    # -- enumeration (tests/inspection) -----------------------------------
    def _atom_exprs(self, atom: Atom, limit: int) -> List[Expression]:
        if isinstance(atom, ConstAtom):
            return [ConstStr(atom.text)]
        if isinstance(atom, RefAtom):
            return [Var(atom.source)]
        exprs: List[Expression] = []
        for p1 in enumerate_position_exprs(atom.p1):
            for p2 in enumerate_position_exprs(atom.p2):
                exprs.append(SubStr(Var(atom.source), p1, p2))
                if len(exprs) >= limit:
                    return exprs
        return exprs

    def enumerate_programs(self, dag: Dag, limit: int = 1000) -> Iterator[Expression]:
        """Yield up to ``limit`` concrete expressions from the dag."""
        produced = 0
        for path in dag.enumerate_paths():
            per_edge: List[List[Expression]] = []
            for edge in path:
                options: List[Expression] = []
                for atom in dag.edges[edge]:
                    options.extend(self._atom_exprs(atom, limit))
                per_edge.append(options)
            for combo in cartesian_product(*per_edge):
                yield assemble_concatenation(list(combo))
                produced += 1
                if produced >= limit:
                    return


def syntactic_adapter(config: SynthesisConfig = DEFAULT_CONFIG) -> LanguageAdapter[Dag]:
    """Convenience: the LanguageAdapter for pure Ls."""
    return SyntacticLanguage(config).adapter()
