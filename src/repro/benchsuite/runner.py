"""Experiment protocols over the benchmark suite (paper §7).

``examples_needed`` implements the paper's effectiveness-of-ranking
measurement: feed examples one at a time (starting with the first row,
then always the first row the current top-ranked program gets wrong) and
count how many are needed before the top-ranked program is correct on
every row.  The paper reports 35/13/2 benchmarks needing 1/2/3 examples.

``time_benchmark`` measures end-to-end synthesis time at the converged
example count (Figure 12(a)); ``measure_benchmark`` reports the Figure 11
metrics plus the before/after-intersection sizes of Figure 12(b).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.api.result import count_log10 as approx_log10  # re-export, old name
from repro.benchsuite.model import Benchmark
from repro.config import DEFAULT_CONFIG, SynthesisConfig
from repro.exceptions import SynthesisError


@dataclass
class ConvergenceResult:
    """Outcome of the incremental-example interaction protocol."""

    benchmark: str
    examples_used: int
    converged: bool
    program: Optional[str]
    elapsed_seconds: float


def examples_needed(
    benchmark: Benchmark,
    language: str = "semantic",
    config: SynthesisConfig = DEFAULT_CONFIG,
    max_examples: int = 5,
) -> ConvergenceResult:
    """Run the §3.2 interaction protocol to convergence."""
    session = benchmark.session(language=language, config=config)
    started = time.perf_counter()
    rows = list(benchmark.rows)
    given: List[int] = []

    def first_mismatch(program) -> Optional[int]:
        for index, (inputs, expected) in enumerate(rows):
            if program.run(inputs) != expected:
                return index
        return None

    next_index = 0
    while len(given) < max_examples:
        inputs, expected = rows[next_index]
        given.append(next_index)
        try:
            session.add_example(inputs, expected)
            program = session.learn()
        except SynthesisError:
            return ConvergenceResult(
                benchmark.name,
                len(given),
                False,
                None,
                time.perf_counter() - started,
            )
        mismatch = first_mismatch(program)
        if mismatch is None:
            return ConvergenceResult(
                benchmark.name,
                len(given),
                True,
                str(program.expr),
                time.perf_counter() - started,
            )
        next_index = mismatch
    return ConvergenceResult(
        benchmark.name, len(given), False, None, time.perf_counter() - started
    )


def time_benchmark(
    benchmark: Benchmark,
    num_examples: int,
    language: str = "semantic",
    config: SynthesisConfig = DEFAULT_CONFIG,
) -> float:
    """Seconds for one full synthesis (GenerateStr + Intersect + rank)."""
    session = benchmark.session(language=language, config=config)
    started = time.perf_counter()
    for inputs, expected in benchmark.rows[:num_examples]:
        session.add_example(inputs, expected)
    session.learn()
    return time.perf_counter() - started


@dataclass
class BenchmarkMetrics:
    """Figure 11/12 numbers for one benchmark."""

    benchmark: str
    log10_expressions: float
    size_first_example: int
    size_after_intersection: Optional[int]


def measure_benchmark(
    benchmark: Benchmark,
    config: SynthesisConfig = DEFAULT_CONFIG,
    intersect_examples: int = 2,
) -> BenchmarkMetrics:
    """Figure 11(a)/(b) on the first example; 12(b) after intersection."""
    session = benchmark.session(config=config)
    inputs, expected = benchmark.rows[0]
    session.add_example(inputs, expected)
    count = session.consistent_count()
    size_first = session.structure_size()
    size_after: Optional[int] = None
    if len(benchmark.rows) >= intersect_examples:
        try:
            for more_inputs, more_expected in benchmark.rows[1:intersect_examples]:
                session.add_example(more_inputs, more_expected)
            size_after = session.structure_size()
        except SynthesisError:
            size_after = None
    return BenchmarkMetrics(
        benchmark.name, approx_log10(count), size_first, size_after
    )
