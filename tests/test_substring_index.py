"""Unit + property tests for the catalog substring-trigger index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semantic.generate import _overlaps
from repro.tables.substring_index import SubstringIndex


def naive_overlapping(values, text, min_len):
    """The oracle: the pairwise scan the index replaces."""
    return [
        value_id
        for value_id, value in enumerate(values)
        if _overlaps(value, text, min_len)
    ]


class TestBasics:
    def test_rejects_empty_values(self):
        with pytest.raises(ValueError):
            SubstringIndex(["a", ""])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            SubstringIndex(["a", "a"])

    def test_id_of(self):
        index = SubstringIndex(["alpha", "beta"])
        assert index.id_of("alpha") == 0
        assert index.id_of("beta") == 1
        assert index.id_of("gamma") is None

    def test_contained_in_reports_all_substrings(self):
        index = SubstringIndex(["an", "ban", "banana", "nan", "x"])
        assert index.contained_in("banana") == {0, 1, 2, 3}

    def test_containing_verifies_candidates(self):
        index = SubstringIndex(["banana", "bandana", "cabana"])
        assert index.containing("ana") == [0, 1, 2]
        assert index.containing("nan") == [0]
        assert index.containing("zzz") == []

    def test_overlapping_is_sorted(self):
        index = SubstringIndex(["cc", "b", "abc"])
        assert index.overlapping("abcc") == [0, 1, 2]

    def test_min_len_gates_containment_not_equality(self):
        index = SubstringIndex(["a", "abc"])
        # "a" is shorter than min_len, so containment in "abc"-like text
        # does not fire; equality still does.
        assert index.overlapping("a", min_len=2) == [0]
        assert index.overlapping("ab", min_len=2) == [1]

    def test_empty_query(self):
        index = SubstringIndex(["a"])
        assert index.overlapping("") == []

    def test_matchers_built_lazily(self):
        index = SubstringIndex(["abc", "bcd"])
        # Equality-only users (relaxed_reachability=False) never pay for
        # the automaton/gram build.
        assert index.id_of("abc") == 0
        assert index._segments is None
        assert index.overlapping("abcd") == [0, 1]
        assert index._segments is not None


values_strategy = st.lists(
    st.text(alphabet="ab1$ ", min_size=1, max_size=9),
    min_size=1,
    max_size=30,
    unique=True,
)


class TestOracleEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(
        values=values_strategy,
        text=st.text(alphabet="ab1$ ", min_size=1, max_size=14),
        min_len=st.integers(min_value=1, max_value=4),
    )
    def test_overlapping_matches_pairwise_scan(self, values, text, min_len):
        index = SubstringIndex(values)
        assert index.overlapping(text, min_len) == naive_overlapping(
            values, text, min_len
        )

    @settings(max_examples=100, deadline=None)
    @given(values=values_strategy, text=st.text(alphabet="ab1$ ", max_size=14))
    def test_contained_in_matches_scan(self, values, text):
        index = SubstringIndex(values)
        expected = {i for i, v in enumerate(values) if v in text}
        assert index.contained_in(text) == expected

    @settings(max_examples=100, deadline=None)
    @given(
        values=values_strategy,
        text=st.text(alphabet="ab1$ ", min_size=1, max_size=14),
    )
    def test_containing_matches_scan(self, values, text):
        index = SubstringIndex(values)
        expected = [i for i, v in enumerate(values) if text in v]
        assert index.containing(text) == expected
