"""Hypothesis property tests for the lookup and semantic layers.

Randomized catalogs and examples exercise Theorem 2(a)/4(a) soundness --
everything the version space denotes must reproduce the example -- plus
intersection soundness across two randomly generated examples that share
a hidden ground-truth program.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.lookup.language import LookupLanguage
from repro.semantic.language import SemanticLanguage
from repro.tables import Catalog, Table

# Small distinct-ish cell values.
CELL = st.text(alphabet="abcdxyz059", min_size=1, max_size=5)


@st.composite
def small_table(draw):
    """A 2-4 row, 2-column table with unique keys and unique values."""
    n = draw(st.integers(min_value=2, max_value=4))
    keys = draw(
        st.lists(CELL, min_size=n, max_size=n, unique=True)
    )
    values = draw(
        st.lists(CELL, min_size=n, max_size=n, unique=True)
    )
    rows = list(zip(keys, values))
    return Table("T", ["K", "V"], rows, keys=[("K",)])


class TestLookupSoundness:
    @given(small_table(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_generated_expressions_reproduce_example(self, table, data):
        catalog = Catalog([table])
        row = data.draw(st.integers(min_value=0, max_value=table.num_rows - 1))
        state = (table.cell("K", row),)
        output = table.cell("V", row)
        language = LookupLanguage(catalog)
        store = language.generate(state, output)
        assume(store is not None)
        for expr in language.enumerate_programs(store, limit=30):
            assert expr.evaluate(state, catalog) == output, str(expr)

    @given(small_table(), st.data())
    @settings(max_examples=30, deadline=None)
    def test_intersection_on_two_rows(self, table, data):
        assume(table.num_rows >= 2)
        catalog = Catalog([table])
        language = LookupLanguage(catalog)
        examples = [
            ((table.cell("K", row),), table.cell("V", row)) for row in (0, 1)
        ]
        first = language.generate(*examples[0])
        second = language.generate(*examples[1])
        assume(first is not None and second is not None)
        merged = language.intersect(first, second)
        # Select(V, T, K=v1) is consistent with both rows, so the merge
        # must be non-empty and everything in it must fit both examples.
        assert merged is not None
        for expr in language.enumerate_programs(merged, limit=30):
            for state, output in examples:
                assert expr.evaluate(state, catalog) == output, str(expr)


class TestSemanticSoundness:
    @given(small_table(), st.data())
    @settings(max_examples=25, deadline=None)
    def test_generated_programs_reproduce_example(self, table, data):
        catalog = Catalog([table])
        row = data.draw(st.integers(min_value=0, max_value=table.num_rows - 1))
        # Input embeds the key; output embeds the value -- the semantic
        # generator must derive the key by substring extraction.
        state = ("go " + table.cell("K", row),)
        output = table.cell("V", row) + "!"
        language = SemanticLanguage(catalog)
        structure = language.generate(state, output)
        assert structure is not None  # constants alone always suffice
        for program in language.enumerate_programs(structure, limit=25):
            assert program.evaluate(state, catalog) == output, str(program)

    @given(small_table(), st.data())
    @settings(max_examples=20, deadline=None)
    def test_best_program_reproduces_example(self, table, data):
        catalog = Catalog([table])
        row = data.draw(st.integers(min_value=0, max_value=table.num_rows - 1))
        state = (table.cell("K", row),)
        output = table.cell("V", row)
        language = SemanticLanguage(catalog)
        structure = language.generate(state, output)
        program = language.best_program(structure)
        assert program is not None
        assert program.evaluate(state, catalog) == output

    @given(small_table())
    @settings(max_examples=20, deadline=None)
    def test_two_row_intersection_generalizes_or_fails_loud(self, table):
        assume(table.num_rows >= 3)
        catalog = Catalog([table])
        language = SemanticLanguage(catalog)
        examples = [
            ((table.cell("K", row),), table.cell("V", row)) for row in (0, 1)
        ]
        first = language.generate(*examples[0])
        second = language.generate(*examples[1])
        merged = language.intersect(first, second)
        assert merged is not None  # the K=v1 lookup survives
        for program in language.enumerate_programs(merged, limit=20):
            for state, output in examples:
                assert program.evaluate(state, catalog) == output, str(program)


class TestCountEnumerationAgreement:
    @given(st.text(alphabet="ab1 ", min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_syntactic_count_equals_enumeration(self, text):
        from repro.syntactic.language import SyntacticLanguage

        language = SyntacticLanguage()
        dag = language.generate((text,), text[: max(1, len(text) - 1)])
        count = language.count_expressions(dag)
        assume(count <= 3000)
        enumerated = list(language.enumerate_programs(dag, limit=5000))
        assert count == len(enumerated)
