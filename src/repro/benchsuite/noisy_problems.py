"""Noisy variants of the lookup benchmarks for the matcher layer.

Real spreadsheets rarely contain byte-clean lookup keys: users paste
values with stray whitespace, inconsistent casing, full-width unicode
forms, or one-character typos.  This module derives, from every
Lt-class benchmark in the §7 suite, a *noisy* counterpart whose fill
inputs carry exactly such perturbations while the expected outputs stay
those of the clean problem.  The perturbations are deterministic (a
fixed cycle keyed on row position -- no RNG), so results are stable
across runs and machines.

The noisy problems keep their own registry; the canonical 50-problem
``_REGISTRY`` in :mod:`repro.benchsuite.model` is untouched, so every
paper-faithful experiment (Figure 11/12, convergence) is unaffected.

Each perturbation is labelled by the matcher strategy expected to
recover it: casing / whitespace / unicode-width noise is the
``canonical`` matcher's territory, one-character typos the ``fuzzy``
matcher's.  :func:`evaluate_noisy` runs the recall protocol used by the
acceptance gate and ``benchmarks/bench_matching.py``: learn each base
problem from its clean rows under the default exact spec, fill the
noisy inputs, and report how many of the rows the exact program misses
are recovered when the program is re-bound to an approximate spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.benchsuite.model import Benchmark, Row, all_benchmarks

#: (perturbation name, recovering strategy, transform).
Perturbation = Tuple[str, str, Callable[[str], str]]


def _pad(text: str) -> str:
    return f"  {text} "


def _double_inner_space(text: str) -> str:
    return text.replace(" ", "  ", 1) if " " in text else _pad(text)


def _widen(text: str) -> str:
    """Swap the first ASCII letter for its full-width (NFKC) form."""
    for index, char in enumerate(text):
        if "a" <= char <= "z" or "A" <= char <= "Z":
            wide = chr(ord(char) - ord("!") + 0xFF01)
            return text[:index] + wide + text[index + 1 :]
    return _pad(text)


def _typo(text: str) -> str:
    """Drop one mid-word character from the longest alphabetic token."""
    tokens = text.split(" ")
    best = max(tokens, key=lambda token: len(token) if token.isalpha() else 0)
    if len(best) < 5 or not best.isalpha():
        return _pad(text)  # too short to survive an edit: fall back
    at = tokens.index(best)
    middle = len(best) // 2
    tokens[at] = best[:middle] + best[middle + 1 :]
    return " ".join(tokens)


#: The deterministic perturbation cycle.  Order matters: row *i* of a
#: noisy benchmark uses cycle entry ``i % len(PERTURBATIONS)``.
PERTURBATIONS: Tuple[Perturbation, ...] = (
    ("uppercase", "canonical", str.upper),
    ("lowercase", "canonical", str.lower),
    ("padded-whitespace", "canonical", _pad),
    ("doubled-inner-space", "canonical", _double_inner_space),
    ("fullwidth-unicode", "canonical", _widen),
    ("one-char-typo", "fuzzy", _typo),
)


def perturb(text: str, index: int) -> str:
    """Apply cycle entry ``index % len(PERTURBATIONS)`` to ``text``."""
    _name, _strategy, transform = PERTURBATIONS[index % len(PERTURBATIONS)]
    return transform(text)


@dataclass(frozen=True)
class NoisyBenchmark:
    """A clean Lt benchmark plus its perturbed fill rows.

    ``rows`` pair perturbed inputs with the *clean* expected outputs;
    ``perturbations`` names, per row, which cycle entry produced it.
    """

    name: str
    base: Benchmark
    rows: Tuple[Row, ...]
    perturbations: Tuple[str, ...]


_NOISY: List[NoisyBenchmark] = []


def _perturb_rows(benchmark: Benchmark) -> Tuple[Tuple[Row, ...], Tuple[str, ...]]:
    rows: List[Row] = []
    names: List[str] = []
    for index, (inputs, output) in enumerate(benchmark.rows):
        # Perturb only the alphabetic inputs: numeric keys ("432") have
        # no casing and a typo would change their identity, not their
        # spelling.
        perturbed = tuple(
            perturb(value, index) if any(c.isalpha() for c in value) else value
            for value in inputs
        )
        rows.append((perturbed, output))
        names.append(PERTURBATIONS[index % len(PERTURBATIONS)][0])
    return tuple(rows), tuple(names)


def noisy_benchmarks() -> List[NoisyBenchmark]:
    """One noisy variant per Lt-class benchmark (built lazily, cached)."""
    if not _NOISY:
        for benchmark in all_benchmarks():
            if benchmark.language_class != "Lt":
                continue
            rows, names = _perturb_rows(benchmark)
            _NOISY.append(
                NoisyBenchmark(
                    name=f"noisy-{benchmark.name}",
                    base=benchmark,
                    rows=rows,
                    perturbations=names,
                )
            )
    return list(_NOISY)


def evaluate_noisy(
    matchers: Sequence[str] = ("canonical", "fuzzy"),
    language: str = "lookup",
    problems: Optional[Sequence[NoisyBenchmark]] = None,
) -> Dict[str, Any]:
    """The noisy-recall protocol behind the ISSUE acceptance gate.

    For every noisy benchmark: learn the base problem from its clean
    rows under the *default* spec, run the learned program over the
    perturbed inputs exactly (the baseline), then re-bind the same
    program to ``matchers`` and run again.  Returns totals plus
    ``recall``: the fraction of exact misses the approximate spec
    recovered (None when exact missed nothing).
    """
    from repro.api.engine import Synthesizer
    from repro.engine.program import Program
    from repro.matching import normalize_spec

    spec = normalize_spec(matchers)
    total = 0
    exact_hits = 0
    exact_misses = 0
    recovered = 0
    per_problem: List[Dict[str, Any]] = []
    for noisy in problems if problems is not None else noisy_benchmarks():
        base = noisy.base
        engine = Synthesizer(catalog=base.catalog(), language=language)
        program = engine.synthesize(base.rows).program
        approx = Program(
            program.expr,
            program.catalog.with_matchers(spec),
            program.language,
            program.num_inputs,
            use_compiled_fill=False,  # approximate fills stay interpreted
        )
        misses = 0
        fixed = 0
        for inputs, expected in noisy.rows:
            total += 1
            if program.run(inputs) == expected:
                exact_hits += 1
                continue
            exact_misses += 1
            misses += 1
            if approx.run(inputs) == expected:
                recovered += 1
                fixed += 1
        per_problem.append(
            {"name": noisy.name, "rows": len(noisy.rows), "exact_misses": misses,
             "recovered": fixed}
        )
    return {
        "matchers": list(spec),
        "total_rows": total,
        "exact_hits": exact_hits,
        "exact_misses": exact_misses,
        "recovered": recovered,
        "recall": (recovered / exact_misses) if exact_misses else None,
        "problems": per_problem,
    }
