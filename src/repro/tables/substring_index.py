"""Substring-trigger index over the catalog's distinct cell values.

``GenerateStr'_t``'s relaxed-reachability trigger (§5.3) asks, for every
newly reachable string ``x``, which table entries ``v`` *overlap* it:
``v == x``, ``v`` a substring of ``x``, or ``x`` a substring of ``v``.
The naive answer rescans every untriggered entry per frontier string --
O(|distinct values| x |frontier|) pairwise ``in`` checks per reachability
step.  This module answers the same question from two purpose-built
indexes over the distinct values:

* **entries contained in x** -- an Aho-Corasick automaton over all values;
  one scan of ``x`` reports every value occurring inside it in
  O(|x| + matches),
* **entries containing x** -- a q-gram inverted index (grams of length
  1..Q): the rarest gram of ``x`` yields a candidate posting list that is
  then verified with one ``in`` check per candidate, so the cost tracks
  the (inherently output-sized) answer instead of the whole catalog,
* **entries equal to x** -- a plain hash lookup (kept separate because the
  containment directions apply ``min_overlap_len`` while equality does
  not).

The index is immutable once built; :meth:`Catalog.substring_index` builds
it lazily and rebuilds after ``Catalog.add``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Longest gram length indexed for the "entries containing x" direction.
#: Queries shorter than ``MAX_GRAM`` use grams of their own length; longer
#: queries use any of their length-``MAX_GRAM`` grams.
MAX_GRAM = 3


class _AhoCorasick:
    """Dict-based Aho-Corasick automaton reporting pattern *ids*.

    Patterns are the indexed values; :meth:`matches` returns the set of
    ids of every pattern occurring in the text (including the text
    itself when it is a pattern).
    """

    __slots__ = ("_goto", "_fail", "_out")

    def __init__(self, patterns: Sequence[str]) -> None:
        goto: List[Dict[str, int]] = [{}]
        out: List[List[int]] = [[]]
        for pattern_id, pattern in enumerate(patterns):
            node = 0
            for char in pattern:
                nxt = goto[node].get(char)
                if nxt is None:
                    nxt = len(goto)
                    goto[node][char] = nxt
                    goto.append({})
                    out.append([])
                node = nxt
            out[node].append(pattern_id)

        fail = [0] * len(goto)
        queue: deque = deque(goto[0].values())
        while queue:
            node = queue.popleft()
            for char, nxt in goto[node].items():
                queue.append(nxt)
                state = fail[node]
                while state and char not in goto[state]:
                    state = fail[state]
                fallback = goto[state].get(char, 0)
                fail[nxt] = fallback if fallback != nxt else 0
                if out[fail[nxt]]:
                    out[nxt].extend(out[fail[nxt]])
        self._goto = goto
        self._fail = fail
        self._out = out

    def matches(self, text: str) -> Set[int]:
        """Ids of every pattern occurring (anywhere) in ``text``."""
        goto, fail, out = self._goto, self._fail, self._out
        node = 0
        found: Set[int] = set()
        for char in text:
            while node and char not in goto[node]:
                node = fail[node]
            node = goto[node].get(char, 0)
            if out[node]:
                found.update(out[node])
        return found


class SubstringIndex:
    """Overlap queries over a fixed sequence of distinct non-empty values.

    Value *ids* are positions into :attr:`values`; since the catalog hands
    its values over in insertion order, sorted ids reproduce the catalog's
    deterministic scan order -- which the semantic generator relies on to
    match the naive path exactly.
    """

    __slots__ = ("values", "_id_of", "_lengths", "_automaton", "_grams")

    def __init__(self, values: Sequence[str]) -> None:
        self.values: Tuple[str, ...] = tuple(values)
        self._id_of: Dict[str, int] = {}
        for value_id, value in enumerate(self.values):
            if not value:
                raise ValueError("SubstringIndex values must be non-empty")
            if value in self._id_of:
                raise ValueError(f"duplicate value {value!r}")
            self._id_of[value] = value_id
        self._lengths: Tuple[int, ...] = tuple(len(v) for v in self.values)
        # The containment matchers are the expensive part and only the
        # relaxed trigger needs them; equality-only configs get away with
        # the id map above, so defer building until the first containment
        # query (build()).
        self._automaton: Optional[_AhoCorasick] = None
        self._grams: Optional[Dict[str, List[int]]] = None

    def build(self) -> "SubstringIndex":
        """Force-build the containment matchers (lazy otherwise)."""
        if self._automaton is None:
            self._automaton = _AhoCorasick(self.values)
            # Gram -> posting list of value ids (ascending; one entry per
            # value even when the gram repeats inside it).
            grams: Dict[str, List[int]] = {}
            for value_id, value in enumerate(self.values):
                seen: Set[str] = set()
                for width in range(1, min(MAX_GRAM, len(value)) + 1):
                    for start in range(len(value) - width + 1):
                        gram = value[start : start + width]
                        if gram not in seen:
                            seen.add(gram)
                            grams.setdefault(gram, []).append(value_id)
            self._grams = grams
        return self

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    def id_of(self, value: str) -> Optional[int]:
        """Id of the value equal to ``value``, or ``None``."""
        return self._id_of.get(value)

    def contained_in(self, text: str) -> Set[int]:
        """Ids of values occurring as substrings of ``text`` (equality too)."""
        return self.build()._automaton.matches(text)

    def containing(self, text: str) -> List[int]:
        """Ids of values having ``text`` as a substring, ascending.

        Candidates come from the posting list of the rarest gram of
        ``text`` (length ``min(len(text), MAX_GRAM)``) and are verified
        with a real ``in`` check, so false positives never escape.
        """
        if not text:
            return []
        grams = self.build()._grams
        width = min(len(text), MAX_GRAM)
        best: Optional[List[int]] = None
        for start in range(len(text) - width + 1):
            posting = grams.get(text[start : start + width])
            if posting is None:
                return []  # some gram of text occurs in no value at all
            if best is None or len(posting) < len(best):
                best = posting
        assert best is not None
        values = self.values
        return [value_id for value_id in best if text in values[value_id]]

    def overlapping(self, text: str, min_len: int = 1) -> List[int]:
        """Ids of values overlapping ``text`` per the §5.3 trigger, sorted.

        A value ``v`` overlaps when ``v == text``, or ``v in text`` with
        ``len(v) >= min_len``, or ``text in v`` with ``len(text) >= min_len``
        -- exactly ``repro.semantic.generate._overlaps``.
        """
        if not text:
            return []
        lengths = self._lengths
        hits: Set[int] = set()
        for value_id in self.contained_in(text):
            if lengths[value_id] >= min_len:
                hits.add(value_id)
        if len(text) >= min_len:
            hits.update(self.containing(text))
        equal = self._id_of.get(text)
        if equal is not None:
            hits.add(equal)
        return sorted(hits)
