"""Exception hierarchy for the repro library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from one base class while still distinguishing table
schema problems from synthesis failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TableError(ReproError):
    """A relational table is malformed (ragged rows, duplicate columns...)."""


class KeyConstraintError(TableError):
    """A declared candidate key does not uniquely identify rows."""


class UnknownTableError(TableError):
    """A lookup referenced a table that is not in the catalog."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown table: {name!r}")
        self.name = name


class UnknownColumnError(TableError):
    """A lookup referenced a column that does not exist in its table."""

    def __init__(self, table: str, column: str) -> None:
        super().__init__(f"table {table!r} has no column {column!r}")
        self.table = table
        self.column = column


class SynthesisError(ReproError):
    """Synthesis could not produce a program for the given examples."""


class NoProgramFoundError(SynthesisError):
    """The version space became empty (no expression fits all examples)."""


class InconsistentExampleError(SynthesisError):
    """An example is malformed (wrong arity, non-string values...)."""


class NoExamplesError(SynthesisError):
    """Synthesis was requested before any input-output example was given.

    Raised by :meth:`repro.api.Synthesizer.synthesize` on an empty task and
    by :meth:`repro.engine.session.SynthesisSession.learn` before the first
    :meth:`add_example` call.
    """

    def __init__(self, message: "str | None" = None) -> None:
        super().__init__(
            message
            or "no examples given: provide at least one (inputs, output) "
            "example before synthesizing"
        )


class UnknownBackendError(ReproError, ValueError):
    """A language backend name is not in the registry.

    Also a ``ValueError`` for backward compatibility with callers that
    guarded ``SynthesisSession(language=...)`` with ``except ValueError``.
    """

    def __init__(self, name: str, available: "tuple | list" = ()) -> None:
        super().__init__(
            f"unknown language backend {name!r}; "
            f"available: {', '.join(sorted(available))}"
        )
        self.name = name
        self.available = tuple(available)

    def __reduce__(self):
        # BaseException pickling replays args (the formatted message);
        # rebuild from the structured fields instead.
        return (type(self), (self.name, self.available))


class SerializationError(ReproError):
    """A serialized program payload is malformed or unsupported."""


class ServiceError(ReproError):
    """A synthesis-service request is invalid or cannot be served."""


class ProgramStoreError(ServiceError):
    """A program-store operation failed (bad name, malformed artifact...)."""


class UnknownProgramError(ProgramStoreError):
    """A store lookup referenced a program name/version that is not stored."""

    def __init__(self, name: str, version: "int | None" = None) -> None:
        what = name if version is None else f"{name}@{version}"
        super().__init__(f"unknown program: {what!r}")
        self.name = name
        self.version = version


class MissingTablesError(ServiceError):
    """A program needs catalog tables the serving environment did not load."""

    def __init__(self, missing: "tuple | list") -> None:
        names = tuple(sorted(missing))
        super().__init__(
            "program requires tables not in the catalog: "
            + ", ".join(names)
            + " (supply them with --table / the service catalog)"
        )
        self.missing = names
