"""Unit tests for the SynthesisSession interaction model (§3.2)."""

import pytest

from repro import Catalog, SynthesisSession, Table, synthesize
from repro.exceptions import (
    InconsistentExampleError,
    NoProgramFoundError,
    SynthesisError,
)


@pytest.fixture()
def comp_catalog():
    return Catalog(
        [
            Table(
                "Comp",
                ["Id", "Name"],
                [
                    ("c1", "Microsoft"),
                    ("c2", "Google"),
                    ("c3", "Apple"),
                    ("c4", "Facebook"),
                    ("c5", "IBM"),
                    ("c6", "Xerox"),
                ],
                keys=[("Id",), ("Name",)],
            )
        ]
    )


class TestBasicFlow:
    def test_learn_and_apply(self, comp_catalog):
        session = SynthesisSession(comp_catalog)
        session.add_example(("c4 c3 c1",), "Facebook Apple Microsoft")
        program = session.learn()
        assert program(("c2 c5 c6",)) == "Google IBM Xerox"

    def test_apply_over_rows(self, comp_catalog):
        session = SynthesisSession(comp_catalog)
        session.add_example(("c4",), "Facebook")
        assert session.apply([("c1",), ("c2",)]) == ["Microsoft", "Google"]

    def test_incremental_examples(self, comp_catalog):
        session = SynthesisSession(comp_catalog)
        session.add_example(("c4 c3 c1",), "Facebook Apple Microsoft")
        session.add_example(("c2 c5 c6",), "Google IBM Xerox")
        assert len(session.examples) == 2
        program = session.learn()
        assert program(("c1 c5 c4",)) == "Microsoft IBM Facebook"

    def test_reset(self, comp_catalog):
        session = SynthesisSession(comp_catalog)
        session.add_example(("c4",), "Facebook")
        session.reset()
        assert session.examples == []
        with pytest.raises(SynthesisError):
            session.learn()

    def test_learn_without_examples_raises(self, comp_catalog):
        with pytest.raises(SynthesisError):
            SynthesisSession(comp_catalog).learn()

    def test_arity_mismatch_rejected(self, comp_catalog):
        session = SynthesisSession(comp_catalog)
        session.add_example(("c4",), "Facebook")
        with pytest.raises(InconsistentExampleError):
            session.add_example(("c4", "c1"), "x")

    def test_contradiction_raises(self, comp_catalog):
        session = SynthesisSession(comp_catalog)
        session.add_example(("c4",), "Facebook")
        with pytest.raises(NoProgramFoundError):
            session.add_example(("c4",), "Google")


class TestLanguages:
    def test_lookup_language(self, comp_catalog):
        session = SynthesisSession(comp_catalog, language="lookup")
        session.add_example(("c4",), "Facebook")
        assert session.learn()(("c5",)) == "IBM"

    def test_syntactic_language(self):
        session = SynthesisSession(language="syntactic")
        session.add_example(("Alan Turing",), "Turing")
        session.add_example(("Grace Hopper",), "Hopper")
        assert session.learn()(("Kurt Godel",)) == "Godel"

    def test_unknown_language_rejected(self):
        with pytest.raises(ValueError):
            SynthesisSession(language="prolog")

    def test_background_tables_merged(self):
        session = SynthesisSession(background=["Month", "DateOrd"])
        session.add_example(("6-3-2008",), "Jun 3rd, 2008")
        assert session.learn()(("9-24-2007",)) == "Sep 24th, 2007"

    def test_background_all(self):
        session = SynthesisSession(background="all")
        assert "Time" in session.catalog and "Month" in session.catalog


class TestMetrics:
    def test_consistent_count_positive(self, comp_catalog):
        session = SynthesisSession(comp_catalog)
        session.add_example(("c4",), "Facebook")
        assert session.consistent_count() > 1000

    def test_structure_size_positive(self, comp_catalog):
        session = SynthesisSession(comp_catalog)
        session.add_example(("c4",), "Facebook")
        assert session.structure_size() > 10

    def test_count_shrinks_with_examples(self, comp_catalog):
        session = SynthesisSession(comp_catalog)
        session.add_example(("c4",), "Facebook")
        before = session.consistent_count()
        session.add_example(("c2",), "Google")
        assert session.consistent_count() < before


class TestAmbiguity:
    def test_highlight_ambiguous_finds_disagreement(self, comp_catalog):
        # After one example the space contains both constant and lookup
        # programs, which disagree on fresh inputs.
        session = SynthesisSession(comp_catalog)
        session.add_example(("c4",), "Facebook")
        flagged = session.highlight_ambiguous([("c2",), ("c4",)])
        flagged_inputs = {state for state, _ in flagged}
        assert ("c2",) in flagged_inputs
        # On the original example input all programs agree.
        assert ("c4",) not in flagged_inputs

    def test_distinguishing_input(self, comp_catalog):
        session = SynthesisSession(comp_catalog)
        session.add_example(("c4",), "Facebook")
        assert session.distinguishing_input([("c4",), ("c2",)]) == ("c2",)

    def test_no_distinguishing_input_when_converged(self, comp_catalog):
        session = SynthesisSession(comp_catalog)
        session.add_example(("c4",), "Facebook")
        assert session.distinguishing_input([("c4",)]) is None

    def test_consistent_programs_start_with_best(self, comp_catalog):
        session = SynthesisSession(comp_catalog)
        session.add_example(("c4",), "Facebook")
        programs = session.consistent_programs(limit=5)
        assert str(programs[0].expr) == str(session.learn().expr)
        assert len(programs) == 5


class TestFunctionalApi:
    def test_synthesize_one_call(self, comp_catalog):
        program = synthesize(
            [(("c4 c3 c1",), "Facebook Apple Microsoft")], catalog=comp_catalog
        )
        assert program(("c2 c5 c6",)) == "Google IBM Xerox"

    def test_wrong_arity_to_program(self, comp_catalog):
        program = synthesize([(("c4",), "Facebook")], catalog=comp_catalog)
        with pytest.raises(ValueError):
            program(("a", "b"))

    def test_program_consistency_check(self, comp_catalog):
        program = synthesize([(("c4",), "Facebook")], catalog=comp_catalog)
        assert program.is_consistent_with([(("c4",), "Facebook")])
        assert not program.is_consistent_with([(("c4",), "Google")])


class TestAddExamplesBatch:
    """The smallest-structure-first batch path of the session."""

    def test_matches_incremental_adds(self, comp_catalog):
        batch = SynthesisSession(comp_catalog)
        batch.add_examples(
            [(("c4",), "Facebook"), (("c3",), "Apple"), (("c1",), "Microsoft")]
        )
        incremental = SynthesisSession(comp_catalog)
        for inputs, output in [
            (("c4",), "Facebook"),
            (("c3",), "Apple"),
            (("c1",), "Microsoft"),
        ]:
            incremental.add_example(inputs, output)
        assert str(batch.learn()) == str(incremental.learn())
        assert batch.consistent_count() == incremental.consistent_count()
        assert batch.structure_size() == incremental.structure_size()
        assert batch.examples == incremental.examples

    def test_folds_into_existing_structure(self, comp_catalog):
        session = SynthesisSession(comp_catalog)
        session.add_example(("c4",), "Facebook")
        session.add_examples([(("c3",), "Apple")])
        assert len(session.examples) == 2
        assert session.learn()(("c2",)) == "Google"

    def test_failure_leaves_session_unchanged(self, comp_catalog):
        session = SynthesisSession(comp_catalog)
        session.add_example(("c4",), "Facebook")
        before = session.consistent_count()
        with pytest.raises(NoProgramFoundError):
            session.add_examples([(("c4",), "Facebook"), (("c4",), "zzz")])
        assert len(session.examples) == 1
        assert session.consistent_count() == before

    def test_arity_checked_against_session(self, comp_catalog):
        session = SynthesisSession(comp_catalog)
        session.add_example(("c4",), "Facebook")
        with pytest.raises(InconsistentExampleError):
            session.add_examples([(("a", "b"), "x")])

    def test_empty_batch_is_noop(self, comp_catalog):
        session = SynthesisSession(comp_catalog)
        session.add_examples([])
        assert session.examples == []
