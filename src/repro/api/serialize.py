"""JSON-friendly (de)serialization of learned programs.

Every expression type of the three languages round-trips through plain
dicts: ``Var``/``ConstStr``/``SubStr``/``Concatenate`` (Ls, §5), ``Select``
(Lt, §4.1) and their Lu compositions (Select sources inside SubStr,
expression-valued predicates).  Position regexes are stored as token
*names* (``"NumTok"``), not integer ids, so payloads survive changes to the
token table's ordering.

The dict format is the cache/serving artifact: learn once, persist the
program, and apply it at serve time with zero synthesis cost (see
``Program.to_dict`` / ``Program.from_dict``).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.core.base import Expression
from repro.core.exprs import Var
from repro.exceptions import SerializationError
from repro.lookup.ast import Select
from repro.syntactic.ast import Concatenate, ConstStr, CPos, Pos, Position, SubStr
from repro.syntactic.regex import Regex
from repro.syntactic.tokens import token_by_id, token_by_name

#: Version stamp of the payload layout produced by this module.
SCHEMA_VERSION = 1


def regex_to_names(regex: Regex) -> List[str]:
    """Token-id tuple -> list of stable token names (``[]`` is ε)."""
    return [token_by_id(ident).name for ident in regex]


def names_to_regex(names: Any) -> Regex:
    """List of token names -> token-id tuple.

    Raises:
        SerializationError: on an unknown token name.
    """
    try:
        return tuple(token_by_name(name).ident for name in names)
    except KeyError as error:
        raise SerializationError(str(error)) from None


def position_to_dict(position: Position) -> Dict[str, Any]:
    if isinstance(position, CPos):
        return {"kind": "cpos", "k": position.k}
    if isinstance(position, Pos):
        return {
            "kind": "pos",
            "r1": regex_to_names(position.r1),
            "r2": regex_to_names(position.r2),
            "c": position.c,
        }
    raise SerializationError(f"cannot serialize position {position!r}")


def position_from_dict(data: Dict[str, Any]) -> Position:
    kind = data.get("kind")
    if kind == "cpos":
        return CPos(int(data["k"]))
    if kind == "pos":
        return Pos(names_to_regex(data["r1"]), names_to_regex(data["r2"]), int(data["c"]))
    raise SerializationError(f"unknown position kind {kind!r}")


def expression_to_dict(expr: Expression) -> Dict[str, Any]:
    """Recursively encode ``expr`` as a JSON-friendly dict."""
    if isinstance(expr, Var):
        return {"kind": "var", "index": expr.index}
    if isinstance(expr, ConstStr):
        return {"kind": "const", "text": expr.text}
    if isinstance(expr, SubStr):
        return {
            "kind": "substr",
            "source": expression_to_dict(expr.source),
            "p1": position_to_dict(expr.p1),
            "p2": position_to_dict(expr.p2),
        }
    if isinstance(expr, Concatenate):
        return {
            "kind": "concat",
            "parts": [expression_to_dict(part) for part in expr.parts],
        }
    if isinstance(expr, Select):
        payload = {
            "kind": "select",
            "column": expr.column,
            "table": expr.table,
            "predicates": [
                {"column": key_column, "value": expression_to_dict(sub)}
                for key_column, sub in expr.predicates
            ],
        }
        # Only approximate-matcher lookups carry provenance; omitting the
        # key otherwise keeps default-path payloads byte-identical to
        # prior releases (same digests, same cache keys).
        if expr.match_provenance:
            payload["match_provenance"] = [
                [column, strategy, confidence]
                for column, strategy, confidence in expr.match_provenance
            ]
        return payload
    raise SerializationError(f"cannot serialize expression type {type(expr).__name__}")


def expression_from_dict(data: Any) -> Expression:
    """Rebuild the expression encoded by :func:`expression_to_dict`.

    Raises:
        SerializationError: on a malformed or unknown payload.
    """
    if not isinstance(data, dict):
        raise SerializationError(f"expected an expression dict, got {type(data).__name__}")
    kind = data.get("kind")
    try:
        if kind == "var":
            return Var(int(data["index"]))
        if kind == "const":
            return ConstStr(str(data["text"]))
        if kind == "substr":
            return SubStr(
                expression_from_dict(data["source"]),
                position_from_dict(data["p1"]),
                position_from_dict(data["p2"]),
            )
        if kind == "concat":
            return Concatenate([expression_from_dict(part) for part in data["parts"]])
        if kind == "select":
            provenance = data.get("match_provenance")
            return Select(
                str(data["column"]),
                str(data["table"]),
                [
                    (str(pred["column"]), expression_from_dict(pred["value"]))
                    for pred in data["predicates"]
                ],
                match_provenance=[
                    (str(column), str(strategy), float(confidence))
                    for column, strategy, confidence in provenance
                ]
                if provenance
                else None,
            )
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(f"malformed {kind!r} payload: {error}") from None
    raise SerializationError(f"unknown expression kind {kind!r}")
