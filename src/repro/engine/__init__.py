"""End-user facing engine (paper §3.2): sessions, programs, interaction.

This is the programmatic equivalent of the paper's Excel add-in: the user
supplies input-output examples one at a time; the engine maintains the
version space incrementally, exposes the top-ranked program, fills in the
remaining rows, and highlights inputs on which the surviving consistent
programs still disagree so the user knows where to look.

For one-shot and batch workloads prefer :class:`repro.api.Synthesizer`,
which returns ranked candidates, metrics and timing in one structured
result; the session here remains the interactive front end.
"""

from repro.engine.program import Program
from repro.engine.session import SynthesisSession, synthesize
from repro.engine.paraphrase import paraphrase

__all__ = ["Program", "SynthesisSession", "synthesize", "paraphrase"]
