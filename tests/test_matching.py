"""Unit tests for the pluggable matcher layer (``repro.matching``).

Covers the strategy implementations (exact, canonical, fuzzy, alias),
the exact-first pipeline semantics, spec normalization and the typed
unknown-strategy error, the serving stats counters, and the catalog /
table integration points (``with_matchers`` clones, the hot-path
``matchers_active`` gate, canonical secondary indexes, matched
lookups).
"""

import pytest

from repro.exceptions import UnknownMatcherError
from repro.matching import (
    EXACT_SPEC,
    AliasMatcher,
    CanonicalMatcher,
    ExactMatcher,
    FuzzyMatcher,
    Match,
    ValueUniverse,
    available_matchers,
    bounded_edit_distance,
    build_pipeline,
    canonicalize,
    gram_similarity,
    matching_stats,
    normalize_spec,
    reset_matching_stats,
)
from repro.matching.alias import groups_from_rows
from repro.matching.fuzzy import edit_limit
from repro.tables.catalog import Catalog
from repro.tables.table import Table

VALUES = ["Microsoft Corp", "Google Inc", "Apple", "IBM", "microsoft corp"]


def universe(values=None):
    return ValueUniverse(list(VALUES if values is None else values))


class TestCanonicalize:
    def test_case_whitespace_width(self):
        assert canonicalize("  MicroSoft   Corp ") == "microsoft corp"
        assert canonicalize("Ｍicrosoft Corp") == "microsoft corp"  # fullwidth M
        assert canonicalize("\tGoogle\n Inc") == "google inc"

    def test_idempotent_on_tricky_folds(self):
        # ﬁ (U+FB01) NFKC-expands under casefold interplay; ẞ casefolds
        # to "ss"; both must reach a fixed point.
        for text in ["ﬁle", "STRAẞE", "Ⅻ", "①②", "ﬀ"]:
            once = canonicalize(text)
            assert canonicalize(once) == once

    def test_empty_and_whitespace(self):
        assert canonicalize("") == ""
        assert canonicalize("   \t\n") == ""


class TestNormalizeSpec:
    def test_none_is_exact(self):
        assert normalize_spec(None) == EXACT_SPEC

    def test_exact_always_first(self):
        assert normalize_spec(("canonical", "fuzzy")) == (
            "exact",
            "canonical",
            "fuzzy",
        )

    def test_comma_string_and_dedup(self):
        assert normalize_spec("canonical, fuzzy, canonical") == (
            "exact",
            "canonical",
            "fuzzy",
        )

    def test_iterable_of_comma_strings(self):
        assert normalize_spec(["canonical,alias"]) == (
            "exact",
            "canonical",
            "alias",
        )

    def test_unknown_name_is_typed_error(self):
        with pytest.raises(UnknownMatcherError) as excinfo:
            normalize_spec(("soundex",))
        assert "soundex" in str(excinfo.value)
        # Also a ValueError, for callers validating knobs generically.
        assert isinstance(excinfo.value, ValueError)

    def test_available_matchers(self):
        assert available_matchers() == ("alias", "canonical", "exact", "fuzzy")


class TestStrategies:
    def test_exact_matcher(self):
        hits = ExactMatcher().match("Apple", universe())
        assert hits == [Match("Apple", "exact", 1.0)]
        assert ExactMatcher().match("apple", universe()) == []

    def test_canonical_matcher_excludes_raw_query(self):
        hits = CanonicalMatcher().match("MICROSOFT CORP", universe())
        assert [h.value for h in hits] == ["Microsoft Corp", "microsoft corp"]
        assert all(h.strategy == "canonical" and h.confidence == 0.9 for h in hits)
        # The query's own spelling never comes back from canonical.
        hits = CanonicalMatcher().match("microsoft corp", universe())
        assert [h.value for h in hits] == ["Microsoft Corp"]

    def test_canonical_uses_prebuilt_map(self):
        probes = []

        def mapping():
            probes.append(True)
            return {"apple": ("Apple",)}

        uni = ValueUniverse(VALUES, canonical_map=mapping)
        hits = CanonicalMatcher().match("APPLE", uni)
        assert [h.value for h in hits] == ["Apple"]
        assert probes  # served from the secondary index, not a scan

    def test_fuzzy_matcher_typo(self):
        hits = FuzzyMatcher().match("Microsft Corp", universe())
        values = {h.value for h in hits}
        assert "Microsoft Corp" in values and "microsoft corp" in values
        assert all(h.confidence <= 0.8 for h in hits)

    def test_fuzzy_respects_edit_limit(self):
        assert edit_limit(3) == 1 and edit_limit(8) == 2 and edit_limit(20) == 3
        # "IBM" -> "IBX" is distance 1 of a length-3 query: allowed;
        # a 2-edit corruption of a short string is not.
        assert FuzzyMatcher().match("IBX", universe(["IBM"]))
        assert not FuzzyMatcher().match("IXX", universe(["IBM"]))

    def test_alias_matcher(self):
        groups = groups_from_rows(
            [("IBM", "International Business Machines", "IBM Corp.")]
        )
        uni = ValueUniverse(
            ["International Business Machines", "Apple"],
            alias_groups=lambda: groups,
        )
        hits = AliasMatcher().match("ibm", uni)  # canonical-form membership
        assert [h.value for h in hits] == ["International Business Machines"]
        assert hits[0].strategy == "alias" and hits[0].confidence == 0.85

    def test_alias_only_returns_stored_values(self):
        groups = groups_from_rows([("NYC", "New York")])
        uni = ValueUniverse(["Boston"], alias_groups=lambda: groups)
        assert AliasMatcher().match("NYC", uni) == []


class TestEditDistance:
    def test_basic_distances(self):
        assert bounded_edit_distance("abc", "abc", 1) == 0
        assert bounded_edit_distance("abc", "abd", 1) == 1
        assert bounded_edit_distance("abc", "ab", 1) == 1
        assert bounded_edit_distance("kitten", "sitting", 3) == 3

    def test_limit_cuts_off(self):
        assert bounded_edit_distance("kitten", "sitting", 2) is None
        assert bounded_edit_distance("a", "abcdef", 3) is None  # length gap

    def test_gram_similarity(self):
        assert gram_similarity("abcd", "abcd") == 1.0
        assert gram_similarity("abcd", "wxyz") == 0.0
        assert 0.0 < gram_similarity("abcd", "abce") < 1.0


class TestPipeline:
    def test_exact_short_circuits_approx(self):
        pipeline = build_pipeline(("canonical", "fuzzy"))
        hits = pipeline.match("Microsoft Corp", universe())
        # "microsoft corp" is a canonical twin, but the exact hit resolves
        # the query alone.
        assert hits == [Match("Microsoft Corp", "exact", 1.0)]

    def test_dedup_keeps_highest_confidence(self):
        pipeline = build_pipeline(("canonical", "fuzzy"))
        hits = pipeline.match("MICROSOFT CORP", universe())
        by_value = {h.value: h for h in hits}
        # Canonical (0.9) wins over fuzzy's lower claim for the same value.
        assert by_value["Microsoft Corp"].strategy == "canonical"
        assert by_value["Microsoft Corp"].confidence == 0.9

    def test_order_confidence_then_universe(self):
        pipeline = build_pipeline(("canonical", "fuzzy"))
        hits = pipeline.match("MICROSOFT CORP", universe())
        confidences = [h.confidence for h in hits]
        assert confidences == sorted(confidences, reverse=True)
        ties = [h.value for h in hits if h.confidence == 0.9]
        assert ties == ["Microsoft Corp", "microsoft corp"]  # universe order

    def test_miss_returns_empty(self):
        pipeline = build_pipeline(("canonical",))
        assert pipeline.match("Netscape", universe()) == []

    def test_exact_only_flag(self):
        assert build_pipeline(None).exact_only
        assert not build_pipeline(("canonical",)).exact_only

    def test_stats_counters(self):
        reset_matching_stats()
        pipeline = build_pipeline(("canonical",))
        pipeline.match("Apple", universe())  # exact hit
        pipeline.match("APPLE", universe())  # canonical hit
        pipeline.match("Netscape", universe())  # miss
        stats = matching_stats()
        assert stats["queries"] == 3
        assert stats["exact_hits"] == 1
        assert stats["approx_hits"] == 1
        assert stats["misses"] == 1
        assert stats["by_strategy"] == {"canonical": 1}
        reset_matching_stats()
        assert matching_stats()["queries"] == 0


def make_catalog():
    return Catalog(
        [
            Table(
                "Comp",
                ["Name", "Stock"],
                [
                    ("Microsoft Corp", "MSFT"),
                    ("Google Inc", "GOOG"),
                    ("Apple", "AAPL"),
                ],
                keys=[("Name",)],
            )
        ]
    )


class TestCatalogIntegration:
    def test_default_catalog_is_exact(self):
        catalog = make_catalog()
        assert catalog.matcher_spec == ("exact",)
        assert catalog.matchers_active is False
        assert catalog.matcher_pipeline() is None

    def test_with_matchers_is_shared_o1_clone(self):
        catalog = make_catalog()
        fingerprint = catalog.fingerprint()
        approx = catalog.with_matchers("canonical,fuzzy")
        assert approx.matcher_spec == ("exact", "canonical", "fuzzy")
        assert approx.matchers_active is True
        assert approx.fingerprint() == fingerprint
        assert approx.table("Comp") is catalog.table("Comp")
        assert approx.matcher_pipeline() is not None
        # Same spec round-trips to the same (frozen) object.
        assert approx.with_matchers(("canonical", "fuzzy")) is approx

    def test_with_matchers_unknown_name(self):
        with pytest.raises(UnknownMatcherError):
            make_catalog().with_matchers("phonetic")

    def test_matchers_active_survives_cow(self):
        approx = make_catalog().with_matchers(("canonical",))
        grown = approx.with_rows("Comp", [("IBM", "IBM")])
        assert grown.matchers_active is True
        assert grown.matcher_spec == ("exact", "canonical")
        # And the exact default stays off after growth.
        grown_exact = make_catalog().with_rows("Comp", [("IBM", "IBM")])
        assert grown_exact.matchers_active is False

    def test_catalog_canonical_value_map(self):
        mapping = make_catalog().canonical_value_map()
        assert mapping["microsoft corp"] == ("Microsoft Corp",)
        assert mapping["aapl"] == ("AAPL",)

    def test_alias_groups_from_synonyms_table(self):
        catalog = make_catalog().with_table(
            Table(
                "Synonyms",
                ["A", "B"],
                [("Microsoft Corp", "MSFT Corp")],
            )
        )
        groups = catalog.alias_groups()
        assert "microsoft corp" in groups
        assert "msft corp" in groups

    def test_table_canonical_map_patched_by_extended(self):
        table = make_catalog().table("Comp")
        before = table.canonical_map("Name")
        assert before["apple"] == ("Apple",)
        grown = table.extended([("APPLE", "AAPL2")])
        after = grown.canonical_map("Name")
        assert after["apple"] == ("Apple", "APPLE")
        # Patched COW map equals a from-scratch rebuild.
        rebuilt = Table("Comp", ["Name", "Stock"], grown.rows, keys=[("Name",)])
        assert after == rebuilt.canonical_map("Name")


class TestMatchedLookup:
    def test_exact_tier_beats_approx(self):
        table = Table(
            "T",
            ["K", "V"],
            [("Alpha", "a"), ("ALPHA", "b")],
        )
        pipeline = build_pipeline(("canonical",))
        text, confidence, strategy = table.lookup_matched(
            "V", {"K": "Alpha"}, pipeline
        )
        assert (text, confidence, strategy) == ("a", 1.0, "exact")

    def test_canonical_resolves_noisy_key(self):
        table = make_catalog().table("Comp")
        pipeline = build_pipeline(("canonical",))
        text, confidence, strategy = table.lookup_matched(
            "Stock", {"Name": "  GOOGLE inc "}, pipeline
        )
        assert (text, confidence, strategy) == ("GOOG", 0.9, "canonical")

    def test_ambiguous_tier_is_empty_like_exact(self):
        table = Table(
            "T",
            ["K", "V"],
            [("Alpha", "a"), ("ALPHA", "b")],
        )
        pipeline = build_pipeline(("canonical",))
        text, confidence, strategy = table.lookup_matched(
            "V", {"K": "alpha"}, pipeline
        )
        assert text == "" and strategy == "ambiguous"

    def test_miss_is_empty(self):
        table = make_catalog().table("Comp")
        pipeline = build_pipeline(("canonical",))
        text, confidence, strategy = table.lookup_matched(
            "Stock", {"Name": "Netscape"}, pipeline
        )
        assert text == "" and confidence == 0.0 and strategy == "none"
