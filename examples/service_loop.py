#!/usr/bin/env python3
"""The serving loop: request cache, program store, HTTP API.

The paper's end-to-end story is interactive -- a user gives examples,
the system learns, then *serves* fills over whole columns.  This example
runs that loop the way a production deployment would (`repro serve` is
the shell equivalent):

1. a `SynthesisService` learns from examples (cold request),
2. the identical request comes back and is served from the LRU request
   cache without re-synthesis (byte-identical result),
3. the learned program is persisted by name in a `ProgramStore` and
   served by reference,
4. the same service answers JSON requests over real HTTP
   (`POST /learn`, `POST /fill`, `GET /stats`).

Run:  python examples/service_loop.py
"""

import json
import tempfile
import threading
import urllib.request

from repro import Catalog, Table
from repro.service import ProgramStore, SynthesisService, create_server


def main() -> None:
    comp = Table(
        "Comp",
        ["Id", "Name"],
        [
            ("c1", "Microsoft"),
            ("c2", "Google"),
            ("c3", "Apple"),
            ("c4", "Facebook"),
            ("c5", "IBM"),
            ("c6", "Xerox"),
        ],
        keys=[("Id",), ("Name",)],
    )
    store_dir = tempfile.mkdtemp(prefix="repro-programs-")
    service = SynthesisService(Catalog([comp]), store=ProgramStore(store_dir))

    examples = [(("c4 c3 c1",), "Facebook Apple Microsoft")]

    # 1. Cold request: synthesis runs.
    result, status = service.learn(examples, save_as="expand-codes")
    print(f"first learn:  cache {status}, program {result.program.source()[:40]}...")

    # 2. Identical request: served from the request cache, same object.
    again, status = service.learn(examples)
    print(f"second learn: cache {status}, identical: {again is result}")

    # 3. Serve by stored name -- zero synthesis, blank rows preserved.
    outputs = service.fill("expand-codes", [["c2 c5 c6"], [], ["c1 c4 c2"]])
    print(f"fill by name: {outputs}")

    # 4. The same service over HTTP (what `repro serve` exposes).
    server = create_server(service, host="127.0.0.1", port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"

    request = urllib.request.Request(
        base + "/fill",
        data=json.dumps(
            {"program": "expand-codes", "rows": [["c6 c2 c5"]]}
        ).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as reply:
        print(f"HTTP /fill:   {json.loads(reply.read())['outputs']}")

    with urllib.request.urlopen(base + "/stats", timeout=30) as reply:
        cache = json.loads(reply.read())["request_cache"]
    print(
        f"cache stats:  {cache['hits']} hits, {cache['misses']} misses, "
        f"{cache['entries']} entries (limit {cache['limit']})"
    )
    server.shutdown()
    server.server_close()


if __name__ == "__main__":
    main()
