"""The Table value object.

A table has a name, an ordered list of column names, rows of string cells
and a list of *candidate keys* (each an ordered tuple of column names).
The paper restricts the columns used in Select conditions to candidate
keys so that a lookup returns at most one row (§4.1); candidate keys are
therefore first-class metadata here.

Keys may be declared explicitly or discovered from the data with
:func:`repro.tables.keys.discover_candidate_keys`.
Declared keys are validated against the data at construction time.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import KeyConstraintError, TableError, UnknownColumnError

CandidateKey = Tuple[str, ...]


class Table:
    """An immutable relational table of string cells.

    Args:
        name: table identifier used by ``Select`` expressions.
        columns: ordered column names (unique).
        rows: sequence of rows; each row has one string per column.
        keys: optional explicit candidate keys; when omitted, minimal keys
            are discovered from the data (width <= ``max_key_width``).
        max_key_width: cap on discovered key width.

    >>> t = Table("Comp", ["Id", "Name"], [("c1", "Microsoft"), ("c2", "Google")])
    >>> t.lookup("Name", {"Id": "c1"})
    'Microsoft'
    """

    __slots__ = (
        "name",
        "columns",
        "rows",
        "keys",
        "_column_index",
        "_key_row_index",
        "_value_rows",
        "_fingerprint",
    )

    def __init__(
        self,
        name: str,
        columns: Sequence[str],
        rows: Iterable[Sequence[str]],
        keys: Optional[Sequence[Sequence[str]]] = None,
        max_key_width: int = 2,
    ) -> None:
        if not name:
            raise TableError("table name must be non-empty")
        columns = list(columns)
        if not columns:
            raise TableError(f"table {name!r} must have at least one column")
        if len(set(columns)) != len(columns):
            raise TableError(f"table {name!r} has duplicate column names: {columns}")

        normalized_rows: List[Tuple[str, ...]] = []
        for row_number, row in enumerate(rows):
            row = tuple(row)
            if len(row) != len(columns):
                raise TableError(
                    f"table {name!r} row {row_number} has {len(row)} cells, "
                    f"expected {len(columns)}"
                )
            for cell in row:
                if not isinstance(cell, str):
                    raise TableError(
                        f"table {name!r} row {row_number} has non-string cell {cell!r}"
                    )
            normalized_rows.append(row)
        if not normalized_rows:
            raise TableError(f"table {name!r} must have at least one row")

        self.name = name
        self.columns: Tuple[str, ...] = tuple(columns)
        self.rows: Tuple[Tuple[str, ...], ...] = tuple(normalized_rows)
        self._column_index: Dict[str, int] = {c: i for i, c in enumerate(self.columns)}

        if keys is None:
            from repro.tables.keys import discover_candidate_keys

            discovered = discover_candidate_keys(
                self.columns, self.rows, max_width=max_key_width
            )
            self.keys: Tuple[CandidateKey, ...] = discovered
        else:
            validated: List[CandidateKey] = []
            for key in keys:
                key = tuple(key)
                for column in key:
                    if column not in self._column_index:
                        raise UnknownColumnError(name, column)
                self._check_key_uniqueness(key)
                validated.append(key)
            if not validated:
                raise KeyConstraintError(f"table {name!r}: empty candidate key list")
            self.keys = tuple(validated)

        # Per-column value -> row-number inverted index; built lazily on the
        # first find_rows/lookup (the serve-time hot path), never mutated
        # afterwards -- the table is immutable.
        self._value_rows: Optional[Dict[str, Dict[str, Tuple[int, ...]]]] = None
        self._fingerprint: Optional[str] = None

        # Precompute key-tuple -> row index for every candidate key; used by
        # both evaluation and condition construction.
        self._key_row_index: Dict[CandidateKey, Dict[Tuple[str, ...], int]] = {}
        for key in self.keys:
            mapping: Dict[Tuple[str, ...], int] = {}
            for row_number, row in enumerate(self.rows):
                values = tuple(row[self._column_index[c]] for c in key)
                mapping[values] = row_number
            self._key_row_index[key] = mapping

    # ------------------------------------------------------------------
    def _check_key_uniqueness(self, key: CandidateKey) -> None:
        seen: Dict[Tuple[str, ...], int] = {}
        for row_number, row in enumerate(self.rows):
            values = tuple(row[self._column_index[c]] for c in key)
            if values in seen:
                raise KeyConstraintError(
                    f"table {self.name!r}: candidate key {key} is not unique "
                    f"(rows {seen[values]} and {row_number} share {values})"
                )
            seen[values] = row_number

    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    def column_position(self, column: str) -> int:
        """Index of ``column``; raises :class:`UnknownColumnError`."""
        try:
            return self._column_index[column]
        except KeyError:
            raise UnknownColumnError(self.name, column) from None

    def has_column(self, column: str) -> bool:
        return column in self._column_index

    def cell(self, column: str, row: int) -> str:
        """The paper's ``T[C, r]``."""
        return self.rows[row][self.column_position(column)]

    def column_values(self, column: str) -> Tuple[str, ...]:
        position = self.column_position(column)
        return tuple(row[position] for row in self.rows)

    def row_by_key(self, key: CandidateKey, values: Tuple[str, ...]) -> Optional[int]:
        """Row index whose ``key`` columns equal ``values``, or ``None``."""
        index = self._key_row_index.get(key)
        if index is None:
            raise KeyConstraintError(
                f"table {self.name!r}: {key} is not a declared candidate key"
            )
        return index.get(values)

    def _ensure_value_rows(self) -> Dict[str, Dict[str, Tuple[int, ...]]]:
        if self._value_rows is None:
            index: Dict[str, Dict[str, List[int]]] = {c: {} for c in self.columns}
            for row_number, row in enumerate(self.rows):
                for column, value in zip(self.columns, row):
                    index[column].setdefault(value, []).append(row_number)
            self._value_rows = {
                column: {value: tuple(rows) for value, rows in postings.items()}
                for column, postings in index.items()
            }
        return self._value_rows

    def value_rows(self, column: str, value: str) -> Tuple[int, ...]:
        """Row numbers whose ``column`` cell equals ``value`` (ascending)."""
        self.column_position(column)  # raises UnknownColumnError
        return self._ensure_value_rows()[column].get(value, ())

    def fingerprint(self) -> str:
        """A stable content digest of the table (name, schema, rows, keys).

        Equal tables (as per ``__eq__``) have equal fingerprints across
        processes and platforms; used by :meth:`Catalog.fingerprint` to
        key the service request cache.  Cached -- the table is immutable.
        """
        if self._fingerprint is None:
            import hashlib
            import json

            payload = json.dumps(
                [
                    self.name,
                    list(self.columns),
                    [list(row) for row in self.rows],
                    [list(key) for key in self.keys],
                ],
                ensure_ascii=False,
                separators=(",", ":"),
            )
            self._fingerprint = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        return self._fingerprint

    def find_rows(
        self, conditions: Dict[str, str], use_index: bool = True
    ) -> List[int]:
        """All row indices whose cells match every ``column: value`` pair.

        Served from the per-column inverted index: the shortest posting
        list is filtered through the others, so a single-key lookup is one
        dict access instead of a full row scan.  ``use_index=False`` runs
        the naive scan (the equivalence oracle, see ``SynthesisConfig``).
        """
        if not use_index:
            return self.find_rows_naive(conditions)
        for column in conditions:
            self.column_position(column)  # raises UnknownColumnError, like
            # the naive scan does, before any empty-posting early return
        if not conditions:
            return list(range(len(self.rows)))
        index = self._ensure_value_rows()
        postings: List[Tuple[int, ...]] = []
        for column, value in conditions.items():
            rows = index[column].get(value)
            if not rows:
                return []
            postings.append(rows)
        postings.sort(key=len)
        smallest = postings[0]
        if len(postings) == 1:
            return list(smallest)
        others = [set(rows) for rows in postings[1:]]
        return [
            row_number
            for row_number in smallest
            if all(row_number in other for other in others)
        ]

    def find_rows_naive(self, conditions: Dict[str, str]) -> List[int]:
        """The full-scan ``find_rows`` (kept as the index's oracle)."""
        positions = [(self.column_position(c), v) for c, v in conditions.items()]
        return [
            row_number
            for row_number, row in enumerate(self.rows)
            if all(row[position] == value for position, value in positions)
        ]

    def lookup(
        self, column: str, conditions: Dict[str, str], use_index: bool = True
    ) -> str:
        """Evaluate a concrete lookup: the paper's Select semantics.

        Returns ``T[column, r]`` when exactly one row ``r`` matches
        ``conditions``, and the empty string otherwise (paper §4.1).
        """
        matches = self.find_rows(conditions, use_index=use_index)
        if len(matches) == 1:
            return self.cell(column, matches[0])
        return ""

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Table)
            and self.name == other.name
            and self.columns == other.columns
            and self.rows == other.rows
            and self.keys == other.keys
        )

    def __hash__(self) -> int:
        return hash((self.name, self.columns, self.rows, self.keys))

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, columns={list(self.columns)}, "
            f"rows={self.num_rows}, keys={[list(k) for k in self.keys]})"
        )
