"""The storage-backend protocol behind ``Table``/``Catalog``.

A backend owns one catalog's data and hands out *snapshots*: immutable,
generation-pinned views answering every query the synthesis engine
makes of a catalog -- row fetches, per-column value->rows postings,
catalog-wide occurrence postings, the distinct-value scan, substring /
n-gram candidate queries and fingerprint/provenance metadata.  Growth
is append-only (``append_rows`` / ``add_table``) and returns a *new*
snapshot; snapshots already handed out keep answering against exactly
the data they pinned (the registry's copy-on-write discipline, pushed
down a layer).

Two implementations satisfy the protocol:

* :class:`repro.storage.memory.MemoryBackend` -- the existing in-memory
  structures (frozen :class:`~repro.tables.catalog.Catalog` snapshots);
* :class:`repro.storage.sqlite.SQLiteBackend` -- one SQLite file per
  catalog, WAL mode, app-level MVCC.

:class:`repro.storage.catalog.StorageCatalog` adapts any snapshot back
into the ``Catalog`` interface the engine consumes, so equivalence of
the two backends is testable at both the protocol and the synthesis
level.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.tables.catalog import Occurrence


@dataclass(frozen=True)
class TableMeta:
    """Schema + provenance metadata of one table at one generation.

    ``keys`` follows the same invariant as :class:`~repro.tables.table.
    Table`: the *current* candidate keys (declared, or discovered from
    the data -- appends may legitimately change discovered keys, which
    is why they are versioned per generation, not per table).
    """

    position: int
    name: str
    columns: Tuple[str, ...]
    keys: Tuple[Tuple[str, ...], ...]
    keys_declared: bool
    max_key_width: int
    num_rows: int
    fingerprint: str
    data_fingerprint: str


class StorageSnapshot(ABC):
    """One immutable, generation-pinned view of a stored catalog.

    Everything a :class:`~repro.storage.catalog.StorageCatalog` needs:
    the answers must be *byte-identical* to the in-memory structures a
    plain ``Catalog`` over the same tables would give -- order
    included (occurrences in catalog scan order, distinct values in
    first-seen order, substring ids in distinct-value rank order).
    """

    #: Monotone per-catalog generation counter this view is pinned to.
    generation: int
    #: ``Catalog.fingerprint()`` of the pinned data.
    fingerprint: str
    #: Per-table metadata, in catalog order.
    tables: Tuple[TableMeta, ...]

    # -- row tier -------------------------------------------------------
    @abstractmethod
    def row(self, position: int, row_number: int) -> Tuple[str, ...]:
        """One row of the table at ``position`` (catalog order)."""

    @abstractmethod
    def rows(self, position: int, start: int, stop: int) -> List[Tuple[str, ...]]:
        """Rows ``start..stop`` (half-open, clamped) of one table."""

    # -- posting tier ---------------------------------------------------
    @abstractmethod
    def value_rows(self, position: int, column: int, value: str) -> Tuple[int, ...]:
        """Row numbers whose cell at ``column`` equals ``value``, ascending."""

    @abstractmethod
    def occurrences(self, value: str) -> Tuple[Occurrence, ...]:
        """Every (table, column, row) holding ``value``, catalog scan order."""

    @abstractmethod
    def distinct_values(self) -> Tuple[str, ...]:
        """All distinct cell values, first-seen scan order (``""`` included)."""

    # -- substring tier -------------------------------------------------
    @abstractmethod
    def substring_index(self):
        """A ``SubstringIndex``-compatible object over the snapshot.

        Must expose ``values`` (indexable by id), ``__len__``,
        ``id_of``, ``contained_in``, ``containing``, ``overlapping``
        and ``build`` with the exact semantics (and id order) of
        :class:`repro.tables.substring_index.SubstringIndex`.
        """

    # -- residency ------------------------------------------------------
    def cache_stats(self) -> Optional[Dict[str, object]]:
        """Hot-tier cache stats, or ``None`` for fully resident tiers."""
        return None


class StorageBackend(ABC):
    """Owner of one stored catalog: snapshots out, append-only growth in."""

    #: Human-readable tier name surfaced in ``GET /stats`` ("memory"/"sqlite").
    tier: str = "unknown"

    @abstractmethod
    def snapshot(self) -> StorageSnapshot:
        """The current head snapshot (consistent, never torn)."""

    @abstractmethod
    def append_rows(self, table_name: str, rows) -> StorageSnapshot:
        """Append ``rows`` to a table; returns the new head snapshot.

        Raises the table layer's errors (:class:`~repro.exceptions.
        UnknownTableError`, :class:`~repro.exceptions.TableError`,
        :class:`~repro.exceptions.KeyConstraintError`) exactly like
        ``Table.extended`` -- a failed append leaves the store at the
        previous generation.
        """

    @abstractmethod
    def add_table(self, table) -> StorageSnapshot:
        """Add a new :class:`~repro.tables.table.Table` at the end."""

    @abstractmethod
    def close(self) -> None:
        """Release resources (idempotent); snapshots die with the backend."""

    def cache_stats(self) -> Optional[Dict[str, object]]:
        """Backend-wide hot-tier stats, or ``None`` when fully resident."""
        return None
