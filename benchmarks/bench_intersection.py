"""Lazy/cached intersection and process-pool batching: the perf harness.

Measures the intersect-side hot paths this PR rebuilt, each against its
naive oracle (``use_lazy_intersection=False, use_intersection_cache=False``
-- the PR-2 behavior), plus process-pool batch throughput:

* ``intersection_chain`` -- a many-example Ls fold over extraction-style
  tasks (outputs assembled from input fields that occur more than once):
  substr atoms dominate every edge, so the interned position-set memo
  collapses the O(edges x partners) pairwise work to one intersection per
  distinct pair, and per-edge atom bucketing is done once instead of once
  per partner,
* ``relearn_stream`` -- the §3.2 interaction loop: re-synthesize after
  every new example; the dag-level memo recognizes the repeated products
  of earlier rounds (content-keyed, so it survives regeneration) where
  the naive path re-intersects everything from scratch each round,
* ``lazy_pruning`` -- a chain whose running structure needs many pieces
  while fresh examples are short: the co-reachability length masks stop
  atom work on pairs that cannot reach the accept pair,
* ``batch_throughput`` -- ``run_batch`` at ``workers=4`` over benchsuite
  tasks: the persistent :class:`~repro.service.pool.WorkerPool` process
  lane vs ``executor="thread"`` and vs the plain sequential lane.
  Threads are GIL-bound on this pure-Python workload, so the process
  lane's speedup tracks the machine's core count; single-core machines
  report ~1x and the regression check skips the row.  On runners with
  >= 4 CPUs the check additionally fails if the process lane is slower
  than sequential at all (``speedup_vs_sequential < 1.0`` -- the
  regression that motivated the persistent pool).

Usage::

    PYTHONPATH=src python benchmarks/bench_intersection.py                    # run + print
    PYTHONPATH=src python benchmarks/bench_intersection.py --out BENCH_intersection.json
    PYTHONPATH=src python benchmarks/bench_intersection.py --quick \
        --check BENCH_intersection.json       # CI: fail on >2x regression

``--check`` compares *speedups* (optimized vs naive on the same machine,
same run), so the gate is stable across hardware; it fails when any
benchmark's current speedup drops below ``baseline / --factor``.  The
``batch_throughput`` row is additionally held to an absolute >= 2x floor
on machines with at least 4 CPUs (the acceptance criterion of the PR),
and skipped below 2 CPUs where process parallelism cannot win.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from dataclasses import replace
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.api import Synthesizer
from repro.benchsuite import all_benchmarks
from repro.config import DEFAULT_CONFIG
from repro.core.formalism import fold_structures, generate_structures
from repro.syntactic.intersect import (
    clear_dag_cache,
    dag_cache_stats,
    reset_dag_cache_stats,
)
from repro.syntactic.language import SyntacticLanguage
from repro.syntactic.positions import (
    clear_intersection_caches,
    intersection_cache_stats,
    reset_intersection_cache_stats,
)

OPTIMIZED = DEFAULT_CONFIG
NAIVE = replace(
    DEFAULT_CONFIG, use_lazy_intersection=False, use_intersection_cache=False
)


def _cold() -> None:
    """Drop every cross-call intersection cache (cold-start timing)."""
    clear_intersection_caches()
    clear_dag_cache()


# -- workloads ---------------------------------------------------------------
def extraction_examples(count: int, fields: int = 6) -> List[tuple]:
    """Extraction-style tasks: output fields recur in the input.

    The shape of a log/ID line whose key fields appear more than once --
    every output span is a substring of the input (often at two
    occurrences), so edges carry several substr atoms with rich position
    sets and the pairwise position work dominates the product.
    """
    rng = random.Random(7)
    examples = []
    for _ in range(count):
        parts = [f"{rng.choice('abcdef')}{rng.randrange(10)}" for _ in range(fields)]
        output = "-".join(parts)
        examples.append(((output + " / " + output,), output))
    return examples


def template_examples(count: int) -> List[tuple]:
    """Template tasks: outputs share a long constant skeleton."""
    first = ["Ann", "Bob", "Cai", "Dee", "Eva", "Fay", "Gil", "Hal", "Ida", "Joy", "Kai", "Lou"]
    last = ["Lee", "Kim", "Roy", "Fox", "Ash", "Oak", "Ivy", "Elm", "Rex", "Ude", "Noa", "Pim"]
    subj = ["math", "bio", "art", "gym", "lab", "sci", "eng", "geo", "law", "med", "sea", "sky"]
    return [
        ((f"{f} {l}", s), f"Dear {f} {l}, welcome to the {s} course catalog")
        for f, l, s in zip(first[:count], last[:count], subj[:count])
    ]


def many_piece_examples(count: int) -> List[tuple]:
    """Many-piece outputs over a tiny alphabet (repeated single-char fields).

    The running structure needs many concatenation pieces and the repeated
    characters give the eager product spurious atom matches to chase; the
    path-length co-reachability mask kills pairs that cannot fit the
    remaining pieces.  The lazy guard's margin is deliberately modest --
    it is a constant-time guard whose job is capping pathological
    wandering, while the big chain wins come from the memo layers -- so
    this row mostly pins "never slower".
    """
    rng = random.Random(11)
    examples = []
    for _ in range(count):
        fields = [rng.choice("01") for _ in range(14)]
        output = ",".join(fields)  # 14 single-char pieces + 13 separators
        examples.append(((" ".join(fields),), output))
    return examples


def _fold_time(config, examples: List[tuple], repeats: int) -> float:
    language = SyntacticLanguage(config)
    adapter = language.adapter()
    structures = generate_structures(adapter, examples)
    best = float("inf")
    for _ in range(repeats):
        _cold()
        started = time.perf_counter()
        fold_structures(adapter, structures, structure_size=language.structure_size)
        best = min(best, time.perf_counter() - started)
    return best


def bench_intersection_chain(num_examples: int, repeats: int) -> Dict[str, float]:
    examples = extraction_examples(num_examples)
    naive_s = _fold_time(NAIVE, examples, repeats)
    reset_intersection_cache_stats()
    optimized_s = _fold_time(OPTIMIZED, examples, repeats)
    stats = intersection_cache_stats()
    return {
        "naive_s": naive_s,
        "optimized_s": optimized_s,
        "speedup": naive_s / optimized_s,
        "position_memo_hit_rate": round(stats["hit_rate"], 4),
    }


def bench_lazy_pruning(num_examples: int, repeats: int) -> Dict[str, float]:
    examples = many_piece_examples(num_examples)
    naive_s = _fold_time(NAIVE, examples, repeats)
    lazy_only = replace(NAIVE, use_lazy_intersection=True)
    optimized_s = _fold_time(lazy_only, examples, repeats)
    return {
        "naive_s": naive_s,
        "optimized_s": optimized_s,
        "speedup": naive_s / optimized_s,
    }


def _relearn_time(config, examples: List[tuple], repeats: int) -> float:
    engine = Synthesizer(language="syntactic", config=config)
    best = float("inf")
    for _ in range(repeats):
        _cold()
        started = time.perf_counter()
        for upto in range(2, len(examples) + 1):
            engine.synthesize(examples[:upto], k=1)
        best = min(best, time.perf_counter() - started)
    return best


def bench_relearn_stream(num_examples: int, repeats: int) -> Dict[str, float]:
    examples = template_examples(num_examples)
    naive_s = _relearn_time(NAIVE, examples, repeats)
    reset_dag_cache_stats()
    optimized_s = _relearn_time(OPTIMIZED, examples, repeats)
    stats = dag_cache_stats()
    return {
        "naive_s": naive_s,
        "optimized_s": optimized_s,
        "speedup": naive_s / optimized_s,
        "dag_memo_hit_rate": round(stats["hit_rate"], 4),
    }


def bench_batch_throughput(
    num_tasks: int, workers: int, repeats: int
) -> Dict[str, float]:
    bench = next(b for b in all_benchmarks() if not b.background)
    engine = Synthesizer(bench.catalog())
    base = [list(bench.rows[i : i + 2]) for i in range(3)]
    tasks = (base * ((num_tasks + len(base) - 1) // len(base)))[:num_tasks]

    def run(executor: str, pool_workers) -> float:
        best = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            engine.run_batch(tasks, workers=pool_workers, executor=executor)
            best = min(best, time.perf_counter() - started)
        return best

    sequential_s = run("thread", None)  # workers=None: the sequential lane
    thread_s = run("thread", workers)
    process_s = run("process", workers)
    engine.close()  # release the persistent worker pool
    return {
        "naive_s": thread_s,  # threads are the pre-PR executor
        "optimized_s": process_s,
        "speedup": thread_s / process_s,
        "sequential_s": sequential_s,
        "speedup_vs_sequential": sequential_s / process_s,
        "workers": workers,
        "cpus": os.cpu_count() or 1,
    }


# -- harness -----------------------------------------------------------------
def run_suite(quick: bool) -> Dict[str, Dict[str, float]]:
    # Sizes are identical in quick and full mode so --check can compare
    # every row against the committed baseline; quick only trims repeats.
    repeats = 2 if quick else 3
    results: Dict[str, Dict[str, float]] = {}

    name = "intersection_chain[examples=10]"
    print(f"running {name} ...", flush=True)
    results[name] = bench_intersection_chain(10, repeats)

    name = "relearn_stream[examples=10]"
    print(f"running {name} ...", flush=True)
    results[name] = bench_relearn_stream(10, repeats)

    name = "lazy_pruning[examples=10]"
    print(f"running {name} ...", flush=True)
    results[name] = bench_lazy_pruning(10, repeats)

    name = "batch_throughput[tasks=24,workers=4]"
    print(f"running {name} ...", flush=True)
    results[name] = bench_batch_throughput(24, workers=4, repeats=1 if quick else 2)
    return results


def render(results: Dict[str, Dict[str, float]]) -> List[str]:
    width = max(len(name) for name in results)
    lines = [
        f"{'benchmark'.ljust(width)}  {'naive':>10}  {'optimized':>10}  {'speedup':>8}"
    ]
    for name, row in results.items():
        lines.append(
            f"{name.ljust(width)}  {row['naive_s']:>9.4f}s  {row['optimized_s']:>9.4f}s  "
            f"{row['speedup']:>7.1f}x"
        )
    return lines


def check_regression(
    results: Dict[str, Dict[str, float]], baseline_path: Path, factor: float
) -> int:
    baseline = json.loads(baseline_path.read_text())["results"]
    failures = []
    for name, row in results.items():
        reference = baseline.get(name)
        if reference is None:
            print(f"note: {name} not in baseline, skipping")
            continue
        if name.startswith("batch_throughput"):
            cpus = int(row.get("cpus", 1))
            if cpus < 2:
                print(
                    f"      skip  {name}: {cpus} CPU(s) -- process parallelism "
                    f"cannot win here (speedup {row['speedup']:.1f}x, informational)"
                )
                continue
            # Absolute sanity floor where parallelism is measurable: the
            # process lane must never be slower than plain sequential on
            # a >= 4 CPU runner (the pre-pool executor was, at 0.85x).
            vs_seq = row.get("speedup_vs_sequential")
            if cpus >= 4 and vs_seq is not None and vs_seq < 1.0:
                print(
                    f"REGRESSION  {name}: process batch ran {vs_seq:.2f}x "
                    f"sequential on {cpus} CPUs (floor 1.0x)"
                )
                failures.append(f"{name} (vs sequential)")
            # The acceptance floor where it is measurable: >= 2x vs threads
            # on a 4-core machine -- divided by --factor like every other
            # row, so one noisy-neighbor stall on a shared runner has the
            # same 2x headroom instead of failing CI with no regression.
            # Below 4 CPUs, gate on the baseline ratio only if the
            # baseline itself was measured on >= 2 CPUs.
            if cpus >= 4:
                floor = 2.0 / factor
            elif int(reference.get("cpus", 1)) >= 2:
                floor = reference["speedup"] / factor
            else:
                print(
                    f"      skip  {name}: baseline recorded on "
                    f"{reference.get('cpus', 1)} CPU(s) (speedup "
                    f"{row['speedup']:.1f}x, informational)"
                )
                continue
        else:
            floor = reference["speedup"] / factor
        status = "ok" if row["speedup"] >= floor else "REGRESSION"
        print(
            f"{status:>10}  {name}: speedup {row['speedup']:.1f}x "
            f"(floor {floor:.1f}x)"
        )
        if status != "ok":
            failures.append(name)
    if failures:
        print(f"\nperf regression in: {', '.join(failures)}")
        return 1
    print("\nno perf regressions")
    return 0


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small sizes (CI smoke)")
    parser.add_argument("--out", type=Path, help="write results JSON here")
    parser.add_argument("--check", type=Path, help="baseline JSON to compare against")
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="fail when a speedup falls below baseline/factor (default 2)",
    )
    args = parser.parse_args(argv)

    results = run_suite(args.quick)
    print()
    for line in render(results):
        print(line)

    if args.out:
        payload = {
            "meta": {
                "python": sys.version.split()[0],
                "cpu_count": os.cpu_count() or 1,
                "timestamp": datetime.now(timezone.utc).isoformat(
                    timespec="seconds"
                ),
                "quick": args.quick,
                "cpus": os.cpu_count() or 1,
                "note": "speedups are machine-relative (same-run naive vs "
                "optimized); refresh with: PYTHONPATH=src python "
                "benchmarks/bench_intersection.py --out BENCH_intersection.json",
            },
            "results": results,
        }
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.out}")

    if args.check:
        print()
        return check_regression(results, args.check, args.factor)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
