"""Core formalism shared by all three transformation languages (paper §3).

The paper factors every language into four pieces: an expression language
``L``, a version-space data structure ``D``, a ``GenerateStr`` procedure,
and an ``Intersect`` procedure.  :mod:`repro.core.base` defines the common
expression protocol and evaluation conventions; :mod:`repro.core.formalism`
defines the generic ``Synthesize`` driver of §3.1 that any language
implementation plugs into.
"""

from repro.core.base import BOTTOM, EvalResult, Expression, InputState, make_state
from repro.core.formalism import LanguageAdapter, Synthesize

__all__ = [
    "BOTTOM",
    "EvalResult",
    "Expression",
    "InputState",
    "LanguageAdapter",
    "Synthesize",
    "make_state",
]
