#!/usr/bin/env python3
"""Quickstart: learn a semantic string transformation from one example.

This is the paper's Example 6: a spreadsheet column holds series of
company codes ("c4 c3 c1") that should be expanded into company names
using a lookup table.  One input-output example is enough -- the ranking
of §5.4 picks the generalizing lookup program over the constant one.

Run:  python examples/quickstart.py
"""

from repro import Catalog, SynthesisSession, Table


def main() -> None:
    # The user's lookup table (Figure 7 of the paper).
    comp = Table(
        "Comp",
        ["Id", "Name"],
        [
            ("c1", "Microsoft"),
            ("c2", "Google"),
            ("c3", "Apple"),
            ("c4", "Facebook"),
            ("c5", "IBM"),
            ("c6", "Xerox"),
        ],
        keys=[("Id",), ("Name",)],
    )

    session = SynthesisSession(Catalog([comp]))

    # One example expresses the intent.
    session.add_example(("c4 c3 c1",), "Facebook Apple Microsoft")

    program = session.learn()
    print("Learned program:")
    print(" ", program.source())
    print()
    print("In plain words:")
    print(" ", program.describe())
    print()

    # Fill in the rest of the column.
    pending = [("c2 c5 c6",), ("c1 c5 c4",), ("c2 c3 c4",)]
    print("Applying to the remaining rows:")
    for row, result in zip(pending, session.apply(pending)):
        print(f"  {row[0]!r:14} -> {result!r}")

    # How big is the space of consistent programs it chose from?
    from repro.benchsuite.runner import approx_log10

    print()
    print(f"Consistent programs represented: about 10^"
          f"{approx_log10(session.consistent_count()):.0f}")
    print(f"Version-space structure size:    {session.structure_size()} units")


if __name__ == "__main__":
    main()
