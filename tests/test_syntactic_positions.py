"""Unit tests for generalized position sets."""

from repro.config import RankingWeights
from repro.syntactic.ast import CPos, Pos
from repro.syntactic.positions import (
    TAG_CPOS,
    TAG_REGEX,
    best_position_expr,
    cached_positions,
    count_position_exprs,
    enumerate_position_exprs,
    generalized_positions,
    intersect_position_sets,
    position_set_size,
)


class TestGeneration:
    def test_contains_both_constant_positions(self):
        entries = generalized_positions("abcd", 1)
        cpos = {e[1] for e in entries if e[0] == TAG_CPOS}
        assert cpos == {1, 1 - 5}

    def test_every_entry_evaluates_back_to_position(self):
        # The defining invariant: generation and evaluation agree.
        for text in ("c4 c3 c1", "10/12/2010", "$145.67+0.30*145.67", "Alan Turing"):
            for position in range(len(text) + 1):
                entries = generalized_positions(text, position)
                for expr in enumerate_position_exprs(entries):
                    assert expr.position_in(text) == position, (
                        f"{expr} on {text!r} expected {position}"
                    )

    def test_regex_entries_present_at_token_boundary(self):
        entries = generalized_positions("ab 12", 2)
        assert any(e[0] == TAG_REGEX for e in entries)

    def test_no_epsilon_epsilon_pair(self):
        for position in range(6):
            entries = generalized_positions("ab 12", position)
            for entry in entries:
                if entry[0] == TAG_REGEX:
                    assert not (entry[1] == () and entry[2] == ())

    def test_out_of_range_position_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            generalized_positions("ab", 5)

    def test_cache_returns_same_tuple(self):
        assert cached_positions("xy 1", 2) is cached_positions("xy 1", 2)


class TestIntersection:
    def test_common_constant_survives(self):
        first = generalized_positions("abc de", 3)
        second = generalized_positions("xyz 12", 3)
        merged = intersect_position_sets(first, second)
        assert merged is not None
        assert (TAG_CPOS, 3) in merged

    def test_occurrence_sets_intersect(self):
        # Position after 1st slash; strings with different slash counts give
        # different negative occurrence indices, so only c=1 survives.
        first = generalized_positions("10/12/2010", 3)
        second = generalized_positions("1/2", 2)
        merged = intersect_position_sets(first, second)
        assert merged is not None
        slash_entries = [
            e for e in merged
            if e[0] == TAG_REGEX and e[1] != () and e[2] == ()
        ]
        assert any(1 in e[3] for e in slash_entries)

    def test_disjoint_sets_give_none(self):
        first = ((TAG_CPOS, 1),)
        second = ((TAG_CPOS, 2),)
        assert intersect_position_sets(first, second) is None

    def test_intersection_is_sound(self):
        # Every expression in the intersection evaluates correctly on BOTH.
        first_text, first_pos = "24 18th", 2
        second_text, second_pos = "104 12th", 3
        merged = intersect_position_sets(
            generalized_positions(first_text, first_pos),
            generalized_positions(second_text, second_pos),
        )
        assert merged is not None
        for expr in enumerate_position_exprs(merged):
            assert expr.position_in(first_text) == first_pos
            assert expr.position_in(second_text) == second_pos


class TestMeasures:
    def test_count_matches_enumeration(self):
        for text, position in (("c4 c3", 2), ("a-b", 1), ("10/12", 0)):
            entries = generalized_positions(text, position)
            assert count_position_exprs(entries) == len(
                list(enumerate_position_exprs(entries))
            )

    def test_size_positive(self):
        assert position_set_size(generalized_positions("ab", 1)) >= 2


class TestBest:
    def test_prefers_regex_over_constant(self):
        weights = RankingWeights()
        entries = generalized_positions("c4 c3", 2)  # end of 1st Alph run
        cost, expr = best_position_expr(entries, weights)
        assert isinstance(expr, Pos)

    def test_falls_back_to_cpos_when_only_constants(self):
        weights = RankingWeights()
        entries = ((TAG_CPOS, 1), (TAG_CPOS, -2))
        cost, expr = best_position_expr(entries, weights)
        assert isinstance(expr, CPos)

    def test_deterministic(self):
        weights = RankingWeights()
        entries = generalized_positions("10/12/2010", 3)
        first = best_position_expr(entries, weights)
        second = best_position_expr(entries, weights)
        assert str(first[1]) == str(second[1])


class TestCacheBounds:
    """LRU bounds and counters of the position memos (heavy-traffic north star)."""

    def test_position_cache_is_lru(self, monkeypatch):
        import repro.syntactic.positions as positions

        monkeypatch.setattr(positions, "_GP_CACHE_LIMIT", 4)
        positions._GP_CACHE.clear()
        positions.reset_position_cache_stats()
        for text in ("aa", "bb", "cc", "dd"):
            positions.cached_positions(text, 0)
        positions.cached_positions("aa", 0)  # refresh aa
        positions.cached_positions("ee", 0)  # evicts bb (LRU), not aa
        keys = {key[0] for key in positions._GP_CACHE}
        assert "aa" in keys and "bb" not in keys
        stats = positions.position_cache_stats()
        assert stats["evictions"] == 1
        assert stats["entries"] == 4
        assert stats["hits"] >= 1

    def test_intersection_cache_stats_and_bound(self, monkeypatch):
        import repro.syntactic.positions as positions

        monkeypatch.setattr(positions, "_ISECT_CACHE_LIMIT", 2)
        positions.clear_intersection_caches()
        positions.reset_intersection_cache_stats()
        # Structurally distinct sets (equal sets would be interned into one
        # instance and every pair would share a memo key).
        sets = [
            positions.cached_positions(text, pos)
            for text, pos in (("a-b", 1), ("a.b", 1), ("ab cd", 2))
        ]
        assert len({id(s) for s in sets}) == 3
        positions.intersect_position_sets_cached(sets[0], sets[1])
        positions.intersect_position_sets_cached(sets[0], sets[1])  # hit
        positions.intersect_position_sets_cached(sets[1], sets[2])
        positions.intersect_position_sets_cached(sets[0], sets[2])  # evicts
        stats = positions.intersection_cache_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 3
        assert stats["evictions"] == 1
        assert stats["entries"] == 2
        assert stats["limit"] == 2

    def test_interning_returns_canonical_instance(self):
        from repro.syntactic.positions import intern_pos_set

        first = (("C", 1), ("C", -2))
        second = (("C", 1), ("C", -2))
        assert intern_pos_set(first) is intern_pos_set(second)

    def test_cached_positions_thread_safe_under_eviction(self, monkeypatch):
        """Concurrent hits and evictions must not race (thread executor)."""
        import threading

        import repro.syntactic.positions as positions

        monkeypatch.setattr(positions, "_GP_CACHE_LIMIT", 8)
        positions._GP_CACHE.clear()
        errors = []

        def worker(seed):
            try:
                for i in range(300):
                    positions.cached_positions(f"t{(seed * 31 + i) % 40}", 0)
            except Exception as error:  # noqa: BLE001 -- the assertion target
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
