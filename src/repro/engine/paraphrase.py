"""Natural-language paraphrasing of learned transformations (§3.2).

"The transformations can be shown using the surface syntax, or can be
paraphrased in a natural language."  This module does the latter, so the
interactive session can explain to an end-user what the top-ranked
program will do before they apply it to a whole column.
"""

from __future__ import annotations

import json

from repro.core.base import Expression
from repro.core.exprs import Var
from repro.lookup.ast import Select
from repro.syntactic.ast import Concatenate, ConstStr, CPos, Pos, Position, SubStr
from repro.syntactic.regex import EPSILON, regex_name


def _ordinal(number: int) -> str:
    value = abs(number)
    if 10 <= value % 100 <= 20:
        suffix = "th"
    else:
        suffix = {1: "st", 2: "nd", 3: "rd"}.get(value % 10, "th")
    if number < 0:
        return f"{value}{suffix}-from-last"
    return f"{value}{suffix}"


def _describe_position(position: Position, side: str) -> str:
    if isinstance(position, CPos):
        if position.k >= 0:
            return f"character position {position.k}"
        return f"{-position.k - 1} characters before the end"
    assert isinstance(position, Pos)
    r1, r2, c = position.r1, position.r2, position.c
    if r1 == EPSILON and r2 != EPSILON:
        return f"the start of the {_ordinal(c)} {regex_name(r2)} match"
    if r2 == EPSILON and r1 != EPSILON:
        return f"the end of the {_ordinal(c)} {regex_name(r1)} match"
    return (
        f"the {_ordinal(c)} boundary between {regex_name(r1)} and {regex_name(r2)}"
    )


def _describe_const(text: str) -> str:
    """Unambiguous rendering of a constant string.

    The naive ``the text "{text}"`` made the empty constant look exactly
    like quoted whitespace and broke on embedded double quotes.  Empty
    and whitespace-only constants are called out in words; everything
    else is JSON-quoted, which escapes quotes, backslashes and control
    characters while leaving ordinary (incl. non-ASCII) text readable.
    Leading/trailing whitespace around visible text (common in table
    cells pasted from spreadsheets) is named and counted, because
    ``" MSFT"`` and ``"MSFT"`` are different lookup keys but look
    identical at a glance even when quoted.
    """
    if not text:
        return "the empty text"
    quoted = json.dumps(text, ensure_ascii=False)
    if text.isspace():
        kinds = {" ": "space", "\t": "tab", "\n": "newline", "\r": "carriage return"}
        names = sorted({kinds.get(char, "whitespace") for char in text})
        unit = " and ".join(names) + ("" if len(text) == 1 else " characters")
        return f"the whitespace text {quoted} ({len(text)} {unit})"
    lead = len(text) - len(text.lstrip())
    trail = len(text) - len(text.rstrip())
    if lead or trail:
        notes = []
        if lead:
            plural = "s" if lead != 1 else ""
            notes.append(f"{lead} leading whitespace character{plural}")
        if trail:
            plural = "s" if trail != 1 else ""
            notes.append(f"{trail} trailing whitespace character{plural}")
        return f"the text {quoted} (with {' and '.join(notes)})"
    return f"the text {quoted}"


def paraphrase(expr: Expression) -> str:
    """A human-readable, recursively built description of ``expr``."""
    if isinstance(expr, Var):
        return f"input column v{expr.index + 1}"
    if isinstance(expr, ConstStr):
        return _describe_const(expr.text)
    if isinstance(expr, SubStr):
        source = paraphrase(expr.source)
        # Recognize the SubStr2 sugar: the c-th occurrence of a token.
        if (
            isinstance(expr.p1, Pos)
            and isinstance(expr.p2, Pos)
            and expr.p1.r1 == EPSILON
            and expr.p2.r2 == EPSILON
            and expr.p1.r2 == expr.p2.r1
            and expr.p1.c == expr.p2.c
        ):
            token = regex_name(expr.p1.r2)
            return f"the {_ordinal(expr.p1.c)} {token} token of {source}"
        start = _describe_position(expr.p1, "start")
        end = _describe_position(expr.p2, "end")
        return f"the substring of {source} from {start} to {end}"
    if isinstance(expr, Select):
        conditions = " and ".join(
            f"{column} equals {paraphrase(sub)}" for column, sub in expr.predicates
        )
        return (
            f"the {expr.column} entry of table {expr.table} in the row where "
            f"{conditions}"
        )
    if isinstance(expr, Concatenate):
        parts = "; then ".join(paraphrase(part) for part in expr.parts)
        return f"the concatenation of: {parts}"
    return str(expr)
