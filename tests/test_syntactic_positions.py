"""Unit tests for generalized position sets."""

from repro.config import RankingWeights
from repro.syntactic.ast import CPos, Pos
from repro.syntactic.positions import (
    TAG_CPOS,
    TAG_REGEX,
    best_position_expr,
    cached_positions,
    count_position_exprs,
    enumerate_position_exprs,
    generalized_positions,
    intersect_position_sets,
    position_set_size,
)


class TestGeneration:
    def test_contains_both_constant_positions(self):
        entries = generalized_positions("abcd", 1)
        cpos = {e[1] for e in entries if e[0] == TAG_CPOS}
        assert cpos == {1, 1 - 5}

    def test_every_entry_evaluates_back_to_position(self):
        # The defining invariant: generation and evaluation agree.
        for text in ("c4 c3 c1", "10/12/2010", "$145.67+0.30*145.67", "Alan Turing"):
            for position in range(len(text) + 1):
                entries = generalized_positions(text, position)
                for expr in enumerate_position_exprs(entries):
                    assert expr.position_in(text) == position, (
                        f"{expr} on {text!r} expected {position}"
                    )

    def test_regex_entries_present_at_token_boundary(self):
        entries = generalized_positions("ab 12", 2)
        assert any(e[0] == TAG_REGEX for e in entries)

    def test_no_epsilon_epsilon_pair(self):
        for position in range(6):
            entries = generalized_positions("ab 12", position)
            for entry in entries:
                if entry[0] == TAG_REGEX:
                    assert not (entry[1] == () and entry[2] == ())

    def test_out_of_range_position_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            generalized_positions("ab", 5)

    def test_cache_returns_same_tuple(self):
        assert cached_positions("xy 1", 2) is cached_positions("xy 1", 2)


class TestIntersection:
    def test_common_constant_survives(self):
        first = generalized_positions("abc de", 3)
        second = generalized_positions("xyz 12", 3)
        merged = intersect_position_sets(first, second)
        assert merged is not None
        assert (TAG_CPOS, 3) in merged

    def test_occurrence_sets_intersect(self):
        # Position after 1st slash; strings with different slash counts give
        # different negative occurrence indices, so only c=1 survives.
        first = generalized_positions("10/12/2010", 3)
        second = generalized_positions("1/2", 2)
        merged = intersect_position_sets(first, second)
        assert merged is not None
        slash_entries = [
            e for e in merged
            if e[0] == TAG_REGEX and e[1] != () and e[2] == ()
        ]
        assert any(1 in e[3] for e in slash_entries)

    def test_disjoint_sets_give_none(self):
        first = ((TAG_CPOS, 1),)
        second = ((TAG_CPOS, 2),)
        assert intersect_position_sets(first, second) is None

    def test_intersection_is_sound(self):
        # Every expression in the intersection evaluates correctly on BOTH.
        first_text, first_pos = "24 18th", 2
        second_text, second_pos = "104 12th", 3
        merged = intersect_position_sets(
            generalized_positions(first_text, first_pos),
            generalized_positions(second_text, second_pos),
        )
        assert merged is not None
        for expr in enumerate_position_exprs(merged):
            assert expr.position_in(first_text) == first_pos
            assert expr.position_in(second_text) == second_pos


class TestMeasures:
    def test_count_matches_enumeration(self):
        for text, position in (("c4 c3", 2), ("a-b", 1), ("10/12", 0)):
            entries = generalized_positions(text, position)
            assert count_position_exprs(entries) == len(
                list(enumerate_position_exprs(entries))
            )

    def test_size_positive(self):
        assert position_set_size(generalized_positions("ab", 1)) >= 2


class TestBest:
    def test_prefers_regex_over_constant(self):
        weights = RankingWeights()
        entries = generalized_positions("c4 c3", 2)  # end of 1st Alph run
        cost, expr = best_position_expr(entries, weights)
        assert isinstance(expr, Pos)

    def test_falls_back_to_cpos_when_only_constants(self):
        weights = RankingWeights()
        entries = ((TAG_CPOS, 1), (TAG_CPOS, -2))
        cost, expr = best_position_expr(entries, weights)
        assert isinstance(expr, CPos)

    def test_deterministic(self):
        weights = RankingWeights()
        entries = generalized_positions("10/12/2010", 3)
        first = best_position_expr(entries, weights)
        second = best_position_expr(entries, weights)
        assert str(first[1]) == str(second[1])
