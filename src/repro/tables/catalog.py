"""Catalog: the database of relational tables plus the value index.

``GenerateStr_t`` (Figure 5(a), line 9) iterates over *all table entries
equal to a reachable string*.  To make that loop fast the catalog maintains
an inverted index from cell value to its occurrences ``(table, column,
row)``.  The semantic algorithm additionally needs substring-overlap
triggers (§5.3), for which the catalog exposes the set of distinct cell
values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import TableError, UnknownTableError
from repro.tables.substring_index import SubstringIndex
from repro.tables.table import Table

#: Cached empty result for values with no occurrences.
_NO_OCCURRENCES: Tuple["Occurrence", ...] = ()


@dataclass(frozen=True)
class Occurrence:
    """One cell occurrence of a value: the paper's (T, C, r) triple."""

    table: str
    column: str
    row: int


class Catalog:
    """A named, ordered collection of :class:`Table` objects.

    >>> catalog = Catalog([Table("T", ["a", "b"], [("1", "x")])])
    >>> catalog.occurrences_of("x")
    (Occurrence(table='T', column='b', row=0),)
    """

    def __init__(self, tables: Iterable[Table] = ()) -> None:
        self._tables: Dict[str, Table] = {}
        self._order: List[str] = []
        self._value_index: Dict[str, List[Occurrence]] = {}
        self._occurrence_cache: Dict[str, Tuple[Occurrence, ...]] = {}
        self._distinct_cache: Optional[Tuple[str, ...]] = None
        self._substring_index: Optional[SubstringIndex] = None
        self._fingerprint: Optional[str] = None
        #: Serve ``Select`` evaluations against this catalog from the
        #: tables' inverted value indexes.  ``Synthesizer`` sets it from
        #: ``SynthesisConfig.use_table_index``; False selects the naive
        #: row scans (the equivalence oracle).
        self.use_table_index: bool = True
        for table in tables:
            self.add(table)

    # ------------------------------------------------------------------
    def add(self, table: Table) -> None:
        if table.name in self._tables:
            raise TableError(f"catalog already contains a table named {table.name!r}")
        self._tables[table.name] = table
        self._order.append(table.name)
        for row_number, row in enumerate(table.rows):
            for column, value in zip(table.columns, row):
                self._value_index.setdefault(value, []).append(
                    Occurrence(table.name, column, row_number)
                )
        # New cells invalidate every derived view of the value index.
        self._occurrence_cache.clear()
        self._distinct_cache = None
        self._substring_index = None
        self._fingerprint = None

    def extend(self, tables: Iterable[Table]) -> "Catalog":
        for table in tables:
            self.add(table)
        return self

    def merged_with(self, other: "Catalog") -> "Catalog":
        """A new catalog containing this catalog's tables then ``other``'s."""
        merged = Catalog(self.tables())
        merged.extend(other.tables())
        return merged

    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[Table]:
        return iter(self.tables())

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def tables(self) -> List[Table]:
        return [self._tables[name] for name in self._order]

    def table_names(self) -> List[str]:
        return list(self._order)

    # ------------------------------------------------------------------
    def occurrences_of(self, value: str) -> Tuple[Occurrence, ...]:
        """All (table, column, row) cells whose content equals ``value``.

        The returned tuple is cached -- the reachability loops call this
        once per frontier value per step, and copying the posting list
        each time showed up in profiles.  Do not mutate.
        """
        cached = self._occurrence_cache.get(value)
        if cached is None:
            occurrences = self._value_index.get(value)
            if occurrences is None:
                return _NO_OCCURRENCES
            cached = tuple(occurrences)
            self._occurrence_cache[value] = cached
        return cached

    def distinct_values(self) -> Tuple[str, ...]:
        """All distinct cell values across the catalog, in insertion order.

        Cached tuple -- do not mutate.  Insertion order (table order, then
        row-major within each table) is the deterministic scan order both
        reachability trigger paths reproduce.
        """
        if self._distinct_cache is None:
            self._distinct_cache = tuple(self._value_index.keys())
        return self._distinct_cache

    def substring_index(self) -> SubstringIndex:
        """The substring-trigger index over all distinct non-empty values.

        Built lazily on first use (and again after :meth:`add`); value ids
        follow :meth:`distinct_values` order with empty cells skipped.
        """
        if self._substring_index is None:
            self._substring_index = SubstringIndex(
                [value for value in self.distinct_values() if value]
            )
        return self._substring_index

    def fingerprint(self) -> str:
        """A stable content digest of the whole catalog.

        Hashes every table's :meth:`Table.fingerprint` in catalog order,
        so two catalogs holding equal tables in the same order fingerprint
        identically across processes.  The service request cache keys on
        this (plus the examples/config signatures); it is invalidated by
        :meth:`add`.
        """
        if self._fingerprint is None:
            import hashlib

            digest = hashlib.sha256()
            for name in self._order:
                digest.update(self._tables[name].fingerprint().encode("ascii"))
                digest.update(b"\x00")
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    @property
    def total_entries(self) -> int:
        """Total number of cells across all tables (paper's entry count)."""
        return sum(t.num_rows * t.num_columns for t in self.tables())

    def default_depth_bound(self) -> int:
        """The paper sets the reachability bound k to the number of tables."""
        return max(1, len(self._order))

    def __repr__(self) -> str:
        return f"Catalog({self._order!r}, entries={self.total_entries})"
