"""Unit tests for the Ls concrete AST and its evaluation semantics."""

import pytest

from repro.core.exprs import Var
from repro.syntactic.ast import Concatenate, ConstStr, CPos, Pos, SubStr, substr2
from repro.syntactic.regex import EPSILON
from repro.syntactic.tokens import token_by_name


def tok(name):
    return (token_by_name(name).ident,)


class TestVar:
    def test_evaluates_to_input(self):
        assert Var(0).evaluate(("a", "b")) == "a"
        assert Var(1).evaluate(("a", "b")) == "b"

    def test_out_of_range_is_bottom(self):
        assert Var(2).evaluate(("a",)) is None

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Var(-1)

    def test_str_is_one_based(self):
        assert str(Var(0)) == "v1"

    def test_equality(self):
        assert Var(1) == Var(1)
        assert Var(1) != Var(2)
        assert hash(Var(1)) == hash(Var(1))


class TestCPos:
    def test_positive(self):
        assert CPos(0).position_in("abc") == 0
        assert CPos(3).position_in("abc") == 3

    def test_negative_counts_from_right(self):
        # Paper: negative k denotes position (l + 1 + k).
        assert CPos(-1).position_in("abc") == 3
        assert CPos(-4).position_in("abc") == 0

    def test_out_of_range(self):
        assert CPos(4).position_in("abc") is None
        assert CPos(-5).position_in("abc") is None

    def test_paper_example7_minus3(self):
        # SubStr(v1, -3, -1) on "1800" extracts "00": positions 2..4.
        assert CPos(-3).position_in("1800") == 2
        assert CPos(-1).position_in("1800") == 4


class TestPos:
    def test_basic(self):
        position = Pos(tok("SlashTok"), EPSILON, 1)
        assert position.position_in("10/12/2010") == 3

    def test_zero_c_rejected(self):
        with pytest.raises(ValueError):
            Pos(EPSILON, tok("NumTok"), 0)

    def test_equality_and_hash(self):
        assert Pos(EPSILON, tok("NumTok"), 1) == Pos(EPSILON, tok("NumTok"), 1)
        assert Pos(EPSILON, tok("NumTok"), 1) != Pos(EPSILON, tok("NumTok"), 2)

    def test_str_mentions_token(self):
        assert "NumTok" in str(Pos(EPSILON, tok("NumTok"), 1))


class TestSubStr:
    def test_basic_extraction(self):
        expr = SubStr(Var(0), CPos(0), CPos(2))
        assert expr.evaluate(("hello",)) == "he"

    def test_bottom_when_positions_invalid(self):
        expr = SubStr(Var(0), CPos(4), CPos(2))
        assert expr.evaluate(("hello",)) is None  # start > end

    def test_bottom_when_pos_fails(self):
        expr = SubStr(Var(0), Pos(tok("SlashTok"), EPSILON, 1), CPos(-1))
        assert expr.evaluate(("nada",)) is None

    def test_bottom_propagates_from_source(self):
        expr = SubStr(Var(5), CPos(0), CPos(1))
        assert expr.evaluate(("a",)) is None

    def test_paper_example7_hour_extraction(self):
        # SubStr(v1, pos(StartTok, ε, 1), -3) on "1800" = "18".
        expr = SubStr(Var(0), Pos(tok("StartTok"), EPSILON, 1), CPos(-3))
        assert expr.evaluate(("1800",)) == "18"
        assert expr.evaluate(("730",)) == "7"

    def test_empty_substring_allowed(self):
        expr = SubStr(Var(0), CPos(1), CPos(1))
        assert expr.evaluate(("ab",)) == ""


class TestSubStr2:
    def test_paper_example4(self):
        # "Alan Turing" -> Concatenate(SubStr2(v1, AlphTok, 2), " ",
        #                              SubStr2(v1, UpperTok, 1)) = "Turing A"
        expr = Concatenate(
            [
                substr2(Var(0), "AlphTok", 2),
                ConstStr(" "),
                substr2(Var(0), "UpperTok", 1),
            ]
        )
        assert expr.evaluate(("Alan Turing",)) == "Turing A"
        assert expr.evaluate(("Oliver Heaviside",)) == "Heaviside O"

    def test_paper_example6_word_extraction(self):
        assert substr2(Var(0), "AlphTok", 1).evaluate(("c4 c3 c1",)) == "c4"
        assert substr2(Var(0), "AlphTok", 2).evaluate(("c4 c3 c1",)) == "c3"
        assert substr2(Var(0), "AlphTok", 3).evaluate(("c4 c3 c1",)) == "c1"

    def test_negative_occurrence(self):
        assert substr2(Var(0), "AlphTok", -1).evaluate(("c4 c3 c1",)) == "c1"

    def test_missing_occurrence_is_bottom(self):
        assert substr2(Var(0), "NumTok", 3).evaluate(("only 1 and 2nd",)) is None


class TestConcatenate:
    def test_joins_parts(self):
        expr = Concatenate([ConstStr("a"), Var(0), ConstStr("c")])
        assert expr.evaluate(("B",)) == "aBc"

    def test_bottom_propagates(self):
        expr = Concatenate([ConstStr("a"), SubStr(Var(0), CPos(9), CPos(10))])
        assert expr.evaluate(("x",)) is None

    def test_requires_parts(self):
        with pytest.raises(ValueError):
            Concatenate([])

    def test_size_and_depth(self):
        expr = Concatenate([ConstStr("a"), SubStr(Var(0), CPos(0), CPos(1))])
        assert expr.size() == 1 + 1 + (1 + 1)
        assert expr.depth() == 1

    def test_equality(self):
        first = Concatenate([ConstStr("a"), Var(0)])
        second = Concatenate([ConstStr("a"), Var(0)])
        assert first == second and hash(first) == hash(second)
