"""Pluggable value-matching strategies for catalog lookups.

The paper's Lu language joins examples to catalog tables on **exact cell
equality**, which breaks on real catalogs: ``"IBM"`` vs ``"IBM Corp."``,
``"co-ordinate"`` vs ``"coordinate"``, trailing whitespace, letter case,
unicode width.  This package turns the hard-wired equality at every
layer -- `Table` value indexes, the lookup generator's Select triggers,
intersection match identity, the service fill path -- into one strategy
seam:

* :class:`ExactMatcher` -- byte equality; the default and the oracle.
  ``matchers=("exact",)`` is byte-identical to every prior release.
* :class:`CanonicalMatcher` -- case / whitespace / unicode-NFKC
  canonicalization, served from canonical-form secondary indexes that
  `Table` maintains through the copy-on-write append path.
* :class:`FuzzyMatcher` -- bounded edit distance + q-gram similarity,
  candidates from the existing substring-index gram postings (no new
  index structures).
* :class:`AliasMatcher` -- per-catalog synonym tables.

Every non-exact hit carries ``(strategy, confidence)`` provenance;
generation and ranking prefer exact matches strictly, approximate hits
surface as ranked lower-confidence candidates, and ambiguity flows into
the existing ``result.ambiguous`` machinery.
"""

from repro.matching.alias import AliasMatcher
from repro.matching.base import (
    EXACT_SPEC,
    Match,
    Matcher,
    MatcherPipeline,
    ValueUniverse,
    available_matchers,
    build_pipeline,
    matching_stats,
    normalize_spec,
    reset_matching_stats,
)
from repro.matching.canonical import CanonicalMatcher, canonicalize
from repro.matching.exact import ExactMatcher
from repro.matching.fuzzy import FuzzyMatcher, bounded_edit_distance, gram_similarity

__all__ = [
    "AliasMatcher",
    "CanonicalMatcher",
    "EXACT_SPEC",
    "ExactMatcher",
    "FuzzyMatcher",
    "Match",
    "Matcher",
    "MatcherPipeline",
    "ValueUniverse",
    "available_matchers",
    "normalize_spec",
    "bounded_edit_distance",
    "build_pipeline",
    "canonicalize",
    "gram_similarity",
    "matching_stats",
    "reset_matching_stats",
]
