"""Exception hierarchy for the repro library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from one base class while still distinguishing table
schema problems from synthesis failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TableError(ReproError):
    """A relational table is malformed (ragged rows, duplicate columns...)."""


class KeyConstraintError(TableError):
    """A declared candidate key does not uniquely identify rows."""


class DuplicateTableError(TableError):
    """A table was added under a name the catalog already holds."""

    def __init__(self, catalog: "str | None", table: str) -> None:
        where = f"catalog {catalog!r}" if catalog else "catalog"
        super().__init__(
            f"{where} already contains a table named {table!r}"
        )
        self.catalog = catalog
        self.table = table


class DuplicateColumnError(TableError):
    """A table header declares the same column name twice.

    ``positions`` are 1-based header positions, the way a user counts
    CSV columns.
    """

    def __init__(self, table: str, column: str, positions: "tuple | list") -> None:
        where = " and ".join(f"position {p}" for p in positions)
        super().__init__(
            f"table {table!r} has a duplicate column {column!r} ({where})"
        )
        self.table = table
        self.column = column
        self.positions = tuple(positions)


class FrozenCatalogError(TableError):
    """In-place mutation was attempted on a frozen catalog snapshot.

    Registry-owned catalogs are frozen: grow them copy-on-write with
    :meth:`Catalog.with_table` / :meth:`Table.extended` (or through the
    registry), never in place -- in-flight requests may be reading the
    snapshot.
    """

    def __init__(self, operation: str) -> None:
        super().__init__(
            f"catalog snapshot is frozen: {operation} would mutate state "
            "an in-flight request may be reading; use Catalog.with_table() "
            "(copy-on-write) or the registry update operations instead"
        )


class UnknownTableError(TableError):
    """A lookup referenced a table that is not in the catalog."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown table: {name!r}")
        self.name = name


class UnknownColumnError(TableError):
    """A lookup referenced a column that does not exist in its table."""

    def __init__(self, table: str, column: str) -> None:
        super().__init__(f"table {table!r} has no column {column!r}")
        self.table = table
        self.column = column


class SynthesisError(ReproError):
    """Synthesis could not produce a program for the given examples."""


class NoProgramFoundError(SynthesisError):
    """The version space became empty (no expression fits all examples)."""


class InconsistentExampleError(SynthesisError):
    """An example is malformed (wrong arity, non-string values...)."""


class NoExamplesError(SynthesisError):
    """Synthesis was requested before any input-output example was given.

    Raised by :meth:`repro.api.Synthesizer.synthesize` on an empty task and
    by :meth:`repro.engine.session.SynthesisSession.learn` before the first
    :meth:`add_example` call.
    """

    def __init__(self, message: "str | None" = None) -> None:
        super().__init__(
            message
            or "no examples given: provide at least one (inputs, output) "
            "example before synthesizing"
        )


class EmptyCatalogError(SynthesisError):
    """A catalog-backed learn was requested against a zero-table catalog.

    The lookup and semantic languages transform strings *relative to a
    catalog of tables*; with no tables there is nothing to look up and
    the deep generators would otherwise fail obscurely.  Purely
    syntactic backends are unaffected.
    """

    def __init__(self, language: str, catalog_name: "str | None" = None) -> None:
        where = f"catalog {catalog_name!r}" if catalog_name else "the catalog"
        super().__init__(
            f"cannot learn {language!r} programs against an empty catalog: "
            f"{where} has no tables (add tables first, or use the "
            "'syntactic' backend for table-free transformations)"
        )
        self.language = language
        self.catalog_name = catalog_name


class UnknownBackendError(ReproError, ValueError):
    """A language backend name is not in the registry.

    Also a ``ValueError`` for backward compatibility with callers that
    guarded ``SynthesisSession(language=...)`` with ``except ValueError``.
    """

    def __init__(self, name: str, available: "tuple | list" = ()) -> None:
        super().__init__(
            f"unknown language backend {name!r}; "
            f"available: {', '.join(sorted(available))}"
        )
        self.name = name
        self.available = tuple(available)

    def __reduce__(self):
        # BaseException pickling replays args (the formatted message);
        # rebuild from the structured fields instead.
        return (type(self), (self.name, self.available))


class UnknownMatcherError(ReproError, ValueError):
    """A matcher strategy name is not in the matching registry.

    Raised by ``repro.matching.build_pipeline`` (and therefore by every
    surface that accepts matcher names: ``SynthesisConfig.matchers``,
    ``repro learn --matchers``, the ``matchers`` field of ``/learn`` and
    ``/fill``).  The HTTP front ends map it to 400; the CLI exits 1.
    Also a ``ValueError`` so callers validating knobs with
    ``except ValueError`` keep working.
    """

    def __init__(self, name: str, available: "tuple | list" = ()) -> None:
        super().__init__(
            f"unknown matcher {name!r}; "
            f"available: {', '.join(sorted(available))}"
        )
        self.name = name
        self.available = tuple(available)

    def __reduce__(self):
        # BaseException pickling replays args (the formatted message);
        # rebuild from the structured fields instead.
        return (type(self), (self.name, self.available))


class SerializationError(ReproError):
    """A serialized program payload is malformed or unsupported."""


class StorageError(ReproError):
    """A storage-tier operation failed (backend, snapshot or ingest)."""


class StorageBackendError(StorageError):
    """A storage backend cannot serve a request (closed, unsupported...)."""


class SnapshotError(StorageError):
    """A persistent index snapshot is missing, corrupt or unwritable.

    Loading never raises this for an *absent or invalid* snapshot --
    loaders fall back to the newest complete one (or to a rebuild);
    it signals misuse, like saving into an unwritable directory or
    explicitly loading a snapshot that fails verification.
    """


class ServiceError(ReproError):
    """A synthesis-service request is invalid or cannot be served."""


class ProgramStoreError(ServiceError):
    """A program-store operation failed (bad name, malformed artifact...)."""


class UnknownProgramError(ProgramStoreError):
    """A store lookup referenced a program name/version that is not stored."""

    def __init__(self, name: str, version: "int | None" = None) -> None:
        what = name if version is None else f"{name}@{version}"
        super().__init__(f"unknown program: {what!r}")
        self.name = name
        self.version = version


class CatalogRegistryError(ServiceError):
    """A catalog-registry operation failed (bad name, unknown catalog...)."""


class UnknownCatalogError(CatalogRegistryError):
    """A request referenced a catalog name that is not registered."""

    def __init__(self, name: str, available: "tuple | list" = ()) -> None:
        known = ", ".join(sorted(available)) or "none registered"
        super().__init__(f"unknown catalog: {name!r} (available: {known})")
        self.name = name
        self.available = tuple(available)


class ChangefeedRangeError(CatalogRegistryError):
    """A changefeed subscription asked for a sequence beyond the head.

    ``since`` must never exceed the feed's current head: a client that
    is "ahead" of the server is either talking to a restarted feed or
    confused about which catalog it watches, and silently serving an
    empty event list would hide that.  The HTTP front ends map this to
    416 with the current ``head`` in the body so the client can
    resubscribe from a real position.
    """

    def __init__(self, catalog: str, since: int, head: int) -> None:
        super().__init__(
            f"catalog {catalog!r} changefeed has no sequence {since} yet "
            f"(head is {head}); resubscribe with since <= {head}"
        )
        self.catalog = catalog
        self.since = since
        self.head = head


class StaleProgramError(ServiceError):
    """A stored program's catalog moved on in ways the program can see.

    Raised when a fill resolves a stored artifact whose recorded catalog
    fingerprint no longer matches the serving catalog *and* at least one
    table the program actually looks up changed or disappeared.  Appends
    and unrelated tables re-resolve silently; this error means the data
    under the program's feet really moved.  ``changes`` is a tuple of
    human-readable descriptions, one per offending table.
    """

    def __init__(
        self,
        program: str,
        catalog: str,
        changes: "tuple | list",
    ) -> None:
        super().__init__(
            f"stored program {program!r} was learned against a different "
            f"version of catalog {catalog!r}: " + "; ".join(changes)
            + " (re-learn the program, or fill against the original catalog)"
        )
        self.program = program
        self.catalog = catalog
        self.changes = tuple(changes)


class MissingTablesError(ServiceError):
    """A program needs catalog tables the serving environment did not load."""

    def __init__(self, missing: "tuple | list") -> None:
        names = tuple(sorted(missing))
        super().__init__(
            "program requires tables not in the catalog: "
            + ", ".join(names)
            + " (supply them with --table / the service catalog)"
        )
        self.missing = names


class WorkerPoolError(ServiceError):
    """A worker-pool operation failed (pool closed, no live workers...)."""


class PoolBusyError(WorkerPoolError):
    """The pool's pending queue is full; the caller should back off.

    The HTTP front ends map this to 503 so load-shedding is visible to
    clients instead of turning into unbounded queueing in the parent.
    """

    def __init__(self, queue_depth: int, max_queue: int) -> None:
        super().__init__(
            f"worker pool is saturated: {queue_depth} requests queued "
            f"(limit {max_queue}); retry later"
        )
        self.queue_depth = queue_depth
        self.max_queue = max_queue

    def __reduce__(self):
        return (type(self), (self.queue_depth, self.max_queue))


class WorkerCrashedError(WorkerPoolError):
    """A worker process died while executing a request.

    The pool respawns the worker and retries the job up to its retry
    budget; this error surfaces only after the retries are exhausted, so
    the client is never left hanging on a dead pipe.
    """

    def __init__(self, pid: "int | None", detail: str = "") -> None:
        who = f"worker pid={pid}" if pid else "worker"
        super().__init__(
            f"{who} crashed while executing the request"
            + (f": {detail}" if detail else "")
        )
        self.pid = pid
        self.detail = detail

    def __reduce__(self):
        return (type(self), (self.pid, self.detail))


class SnapshotAttachError(WorkerPoolError):
    """A worker could not attach a catalog for the requested fingerprint.

    Neither a fork-inherited catalog nor a verified snapshot in the
    shared spool directory matched; the parent treats this as a pool-level
    failure and serves the request in-process instead.
    """

    def __init__(self, fingerprint: str, detail: str = "") -> None:
        super().__init__(
            f"no attachable catalog for fingerprint {fingerprint[:16]}..."
            + (f": {detail}" if detail else "")
        )
        self.fingerprint = fingerprint
        self.detail = detail

    def __reduce__(self):
        return (type(self), (self.fingerprint, self.detail))


class MissingColumnsError(ServiceError):
    """The serving catalog's tables lost columns a program references.

    ``missing`` holds sorted ``"Table.Column"`` names -- the table exists
    but no longer carries the column, so every lookup through it would
    fail deep inside evaluation; refuse up front instead.
    """

    def __init__(self, missing: "tuple | list") -> None:
        names = tuple(sorted(missing))
        super().__init__(
            "program references columns missing from the catalog tables: "
            + ", ".join(names)
            + " (the tables exist but their schema changed; re-learn the "
            "program against the current catalog)"
        )
        self.missing = names
