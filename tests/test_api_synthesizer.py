"""Unit tests for the Synthesizer engine API (repro.api.engine)."""

import pytest

from repro import (
    Catalog,
    NoExamplesError,
    NoProgramFoundError,
    SynthesisSession,
    SynthesisTask,
    Synthesizer,
    Table,
)
from repro.api.result import PROVENANCE_BEST
from repro.exceptions import InconsistentExampleError


@pytest.fixture()
def comp_catalog():
    return Catalog(
        [
            Table(
                "Comp",
                ["Id", "Name"],
                [
                    ("c1", "Microsoft"),
                    ("c2", "Google"),
                    ("c3", "Apple"),
                    ("c4", "Facebook"),
                    ("c5", "IBM"),
                    ("c6", "Xerox"),
                ],
                keys=[("Id",), ("Name",)],
            )
        ]
    )


EXAMPLE = (("c4 c3 c1",), "Facebook Apple Microsoft")


class TestSynthesize:
    def test_returns_ranked_result(self, comp_catalog):
        result = Synthesizer(comp_catalog).synthesize([EXAMPLE], k=3)
        assert result.language == "semantic"
        assert result.best.rank == 1
        assert result.best.provenance == PROVENANCE_BEST
        assert 1 <= len(result.programs) <= 3
        assert [p.rank for p in result.programs] == list(
            range(1, len(result.programs) + 1)
        )
        # Runners-up are ordered by ascending cost.
        tail_scores = [p.score for p in result.programs[1:]]
        assert tail_scores == sorted(tail_scores)
        assert result.program(("c2 c5 c6",)) == "Google IBM Xerox"

    def test_matches_session_learn(self, comp_catalog):
        result = Synthesizer(comp_catalog).synthesize([EXAMPLE])
        session = SynthesisSession(comp_catalog)
        session.add_example(*EXAMPLE)
        assert result.program.source() == session.learn().source()
        assert result.consistent_count == session.consistent_count()
        assert result.structure_size == session.structure_size()

    def test_metrics_and_flags(self, comp_catalog):
        result = Synthesizer(comp_catalog).synthesize([EXAMPLE])
        assert result.consistent_count > 1
        assert result.structure_size > 10
        assert result.elapsed_seconds >= 0
        assert result.ambiguous is True

    def test_no_examples_raises_dedicated_error(self, comp_catalog):
        with pytest.raises(NoExamplesError) as excinfo:
            Synthesizer(comp_catalog).synthesize([])
        assert "no examples given" in str(excinfo.value)
        assert "add_example" not in str(excinfo.value)  # API-boundary wording

    def test_contradiction_raises(self):
        engine = Synthesizer(language="syntactic")
        with pytest.raises(NoProgramFoundError):
            engine.synthesize([(("a",), "x"), (("a",), "y")])

    def test_mixed_arity_rejected(self, comp_catalog):
        with pytest.raises(InconsistentExampleError):
            Synthesizer(comp_catalog).synthesize(
                [(("c4",), "Facebook"), (("c4", "c1"), "x")]
            )

    def test_task_object_and_fill(self, comp_catalog):
        task = SynthesisTask(examples=(EXAMPLE,), name="expand-codes")
        result = Synthesizer(comp_catalog).synthesize(task)
        assert result.task.name == "expand-codes"
        assert result.task.num_inputs == 1
        assert result.fill([("c2 c5 c6",)]) == ["Google IBM Xerox"]

    def test_ranked_programs_unpack_as_pairs(self, comp_catalog):
        result = Synthesizer(comp_catalog).synthesize([EXAMPLE], k=2)
        for score, program in result.programs:
            assert isinstance(score, float)
            assert program.run(("c4 c3 c1",)) == "Facebook Apple Microsoft"

    def test_ambiguous_rows_flags_disagreement(self, comp_catalog):
        # After one lookup example the candidate set still contains the
        # constant-key program Select(Name, Comp, Id = "c4"), which
        # disagrees with the generalizing one on a fresh input.
        result = Synthesizer(comp_catalog, language="lookup").synthesize(
            [(("c4",), "Facebook")], k=8
        )
        flagged = result.ambiguous_rows([("c2",), ("c4",)])
        flagged_inputs = {state for state, _ in flagged}
        assert ("c2",) in flagged_inputs
        assert ("c4",) not in flagged_inputs

    def test_result_to_dict_is_json_friendly(self, comp_catalog):
        import json

        result = Synthesizer(comp_catalog).synthesize([EXAMPLE], k=2)
        payload = result.to_dict()
        json.dumps(payload)
        assert payload["language"] == "semantic"
        assert payload["ambiguous"] is True
        assert payload["programs"][0]["rank"] == 1
        # The exact count here is astronomically large: elided from JSON,
        # represented by its log10 instead.
        assert payload["consistent_count_log10"] > 3


class TestRunBatch:
    def make_tasks(self):
        return [
            SynthesisTask(examples=((("c4",), "Facebook"),), name="one"),
            SynthesisTask(examples=((("c2 c5",), "Google IBM"),), name="two"),
            [(("c1 c3 c6",), "Microsoft Apple Xerox")],
        ]

    def test_batch_equals_sequential(self, comp_catalog):
        engine = Synthesizer(comp_catalog)
        tasks = self.make_tasks()
        sequential = engine.run_batch(tasks, workers=None)
        parallel = engine.run_batch(tasks, workers=4)
        assert len(parallel) == len(tasks)
        for seq, par in zip(sequential, parallel):
            assert par.program.source() == seq.program.source()
            assert par.consistent_count == seq.consistent_count
            assert par.structure_size == seq.structure_size
            assert [p.score for p in par.programs] == [p.score for p in seq.programs]

    def test_batch_preserves_order(self, comp_catalog):
        engine = Synthesizer(comp_catalog)
        results = engine.run_batch(self.make_tasks(), workers=2)
        assert results[0].task.name == "one"
        assert results[1].task.name == "two"
        assert results[2].program(("c2 c5 c4",)) == "Google IBM Facebook"

    def test_batch_error_propagates_by_default(self):
        engine = Synthesizer(language="syntactic")
        tasks = [[(("a",), "x"), (("a",), "y")]]
        with pytest.raises(NoProgramFoundError):
            engine.run_batch(tasks, workers=2)

    def test_batch_return_errors_keeps_slots(self):
        engine = Synthesizer(language="syntactic")
        tasks = [
            [(("Alan Turing",), "Turing"), (("Grace Hopper",), "Hopper")],
            [(("a",), "x"), (("a",), "y")],
            [],
        ]
        results = engine.run_batch(tasks, workers=2, return_errors=True)
        assert results[0].program(("Kurt Godel",)) == "Godel"
        assert isinstance(results[1], NoProgramFoundError)
        assert isinstance(results[2], NoExamplesError)


class TestSessionCompat:
    def test_session_zero_examples_error(self, comp_catalog):
        session = SynthesisSession(comp_catalog)
        with pytest.raises(NoExamplesError):
            session.learn()

    def test_session_alias_language(self, comp_catalog):
        session = SynthesisSession(comp_catalog, language="Lu")
        assert session.language_name == "semantic"
