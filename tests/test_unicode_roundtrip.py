"""Unicode round-trips: non-ASCII and astral-plane strings through every
layer of the pipeline -- tokenization, catalog/substring indexes, program
serialization, CSV IO and the HTTP endpoints.

The paper's languages are untyped over strings; nothing in the stack may
silently assume ASCII.  ``ASTRAL`` cells exercise characters outside the
Basic Multilingual Plane (surrogate pairs in UTF-16 builds, 4-byte
UTF-8), the classic place for off-by-one indexing and encoding bugs.
"""

import json
import threading
import urllib.request

import pytest

from repro.api.engine import Synthesizer
from repro.engine.program import Program
from repro.semantic.generate import _overlaps
from repro.service import SynthesisService, create_server
from repro.syntactic.ast import ConstStr
from repro.syntactic.tokens import TokenMatchIndex
from repro.tables.catalog import Catalog
from repro.tables.io import table_from_csv_text, table_to_csv_text
from repro.tables.substring_index import SubstringIndex
from repro.tables.table import Table

#: BMP non-ASCII, combining marks, CJK, and astral-plane values.
UNICODE_CELLS = [
    "Müller",
    "Škoda Österreich",
    "ναὶ μὰ τήν",
    "日本語テスト",
    "🦄 unicorn",
    "𝔘𝔫𝔦𝔠𝔬𝔡𝔢",  # mathematical fraktur: all astral plane
    "étude",  # combining acute
]
ASTRAL = "𝔘𝔫𝔦𝔠𝔬𝔡𝔢"


def unicode_catalog():
    rows = [(f"k{i}", value) for i, value in enumerate(UNICODE_CELLS)]
    return Catalog([Table("U", ["Id", "Val"], rows, keys=[("Id",)])])


class TestTokenization:
    @pytest.mark.parametrize("text", UNICODE_CELLS)
    def test_match_index_spans_within_bounds(self, text):
        index = TokenMatchIndex(text)
        for spans in index.matches.values():
            for start, end in spans:
                assert 0 <= start <= end <= len(text)

    def test_astral_positions_are_code_points(self):
        # Each fraktur letter is ONE Python code point; spans must count
        # code points, not UTF-16 units.
        index = TokenMatchIndex(ASTRAL)
        assert index.text == ASTRAL
        assert len(ASTRAL) == 7
        # End token ends at len(text) in code points.
        assert index.tokens_ending_at(7)


class TestIndexes:
    def test_occurrences_of_unicode_values(self):
        catalog = unicode_catalog()
        for value in UNICODE_CELLS:
            (occurrence,) = catalog.occurrences_of(value)
            assert occurrence.table == "U"

    def test_substring_index_matches_naive_overlap(self):
        values = list(UNICODE_CELLS)
        index = SubstringIndex(values)
        queries = UNICODE_CELLS + ["Mü", "ü", "🦄", "𝔘𝔫", "testé", "xyz"]
        for text in queries:
            naive = [
                value_id
                for value_id, value in enumerate(values)
                if _overlaps(value, text, 1)
            ]
            assert index.overlapping(text) == naive, text

    def test_table_value_rows_unicode(self):
        table = unicode_catalog().table("U")
        for row_number, value in enumerate(UNICODE_CELLS):
            assert table.value_rows("Val", value) == (row_number,)
            assert table.find_rows({"Val": value}) == table.find_rows_naive(
                {"Val": value}
            )

    def test_fingerprint_distinguishes_unicode_content(self):
        # NFC vs NFD "étude" are different strings; the fingerprint (and
        # therefore the service cache key) must not conflate them.
        nfc = Table("T", ["a"], [("étude",)])
        nfd = Table("T", ["a"], [("étude",)])
        assert nfc.fingerprint() != nfd.fingerprint()


class TestCsvRoundTrip:
    def test_table_round_trips(self):
        table = unicode_catalog().table("U")
        parsed = table_from_csv_text("U", table_to_csv_text(table), keys=[("Id",)])
        assert parsed == table

    def test_cells_with_quotes_commas_and_astral(self):
        table = Table("Q", ["a", "b"], [('say "hí"', "𝔘,𝔫"), ("plain", "x")])
        parsed = table_from_csv_text("Q", table_to_csv_text(table))
        assert parsed.rows == table.rows


class TestProgramSerialization:
    def test_const_unicode_round_trip(self):
        program = Program(ConstStr(ASTRAL + " ✓"), None, "syntactic", 1)
        rebuilt = Program.from_json(program.to_json())
        assert rebuilt.run(("anything",)) == ASTRAL + " ✓"
        assert rebuilt.to_dict() == program.to_dict()

    def test_learned_lookup_round_trips_unicode_outputs(self):
        catalog = unicode_catalog()
        examples = [(("k0",), "Müller"), (("k3",), "日本語テスト")]
        result = Synthesizer(catalog).synthesize(examples)
        rebuilt = Program.from_json(result.program.to_json(), catalog=catalog)
        for i, value in enumerate(UNICODE_CELLS):
            assert rebuilt.run((f"k{i}",)) == value == result.program.run((f"k{i}",))


class TestHttpUnicode:
    @pytest.fixture()
    def server(self):
        service = SynthesisService(unicode_catalog())
        server = create_server(service, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    def _post(self, server, path, payload):
        host, port = server.server_address[:2]
        request = urllib.request.Request(
            f"http://{host}:{port}{path}",
            data=json.dumps(payload, ensure_ascii=False).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as reply:
            return json.loads(reply.read().decode("utf-8"))

    def test_learn_and_fill_unicode_over_http(self, server):
        body = self._post(
            server,
            "/learn",
            {"examples": [[["k0"], "Müller"], [["k3"], "日本語テスト"]]},
        )
        assert body["cache"] == "miss"
        payload = body["programs"][0]["program"]
        filled = self._post(
            server,
            "/fill",
            {"program": payload, "rows": [[f"k{i}"] for i in range(len(UNICODE_CELLS))]},
        )
        assert filled["outputs"] == UNICODE_CELLS

    def test_unicode_requests_hit_the_cache(self, server):
        examples = {"examples": [[["k4"], "🦄 unicorn"], [["k5"], ASTRAL]]}
        first = self._post(server, "/learn", examples)
        second = self._post(server, "/learn", examples)
        assert first["cache"] == "miss"
        assert second["cache"] == "hit"
