"""Command-line interface: the Excel add-in workflow for the terminal.

Usage::

    python -m repro --table Comp.csv --examples examples.csv [--fill pending.csv]

``examples.csv`` holds one example per row: all columns but the last are
inputs, the last is the output.  ``--fill`` rows have inputs only; the
learned program's outputs are printed as CSV.  ``--language`` selects
Lu (default), Lt or Ls; ``--background`` merges §6 tables by name.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.engine.session import SynthesisSession
from repro.exceptions import ReproError
from repro.tables.catalog import Catalog
from repro.tables.io import load_table_csv

LANGUAGE_BY_FLAG = {"semantic": "semantic", "lookup": "lookup", "syntactic": "syntactic",
                    "Lu": "semantic", "Lt": "lookup", "Ls": "syntactic"}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Learn semantic string transformations from examples "
        "(Singh & Gulwani, VLDB 2012).",
    )
    parser.add_argument(
        "--table",
        action="append",
        default=[],
        metavar="CSV",
        help="lookup table CSV (first row = header; repeatable)",
    )
    parser.add_argument(
        "--examples",
        required=True,
        metavar="CSV",
        help="examples CSV: input columns then the output column",
    )
    parser.add_argument(
        "--fill",
        metavar="CSV",
        help="rows of inputs to fill with the learned program",
    )
    parser.add_argument(
        "--language",
        default="semantic",
        choices=sorted(LANGUAGE_BY_FLAG),
        help="transformation language (default: semantic / Lu)",
    )
    parser.add_argument(
        "--background",
        action="append",
        default=[],
        metavar="NAME",
        help="background table to merge (e.g. Month, Time; repeatable)",
    )
    parser.add_argument(
        "--describe",
        action="store_true",
        help="also print the natural-language paraphrase",
    )
    return parser


def _read_rows(path: str) -> List[List[str]]:
    with open(path, newline="", encoding="utf-8") as handle:
        return [row for row in csv.reader(handle) if row]


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        catalog = Catalog([load_table_csv(Path(path)) for path in args.table])
        session = SynthesisSession(
            catalog=catalog,
            language=LANGUAGE_BY_FLAG[args.language],
            background=args.background or None,
        )
        for row in _read_rows(args.examples):
            if len(row) < 2:
                raise ReproError(
                    f"example row needs >= 2 columns (inputs..., output): {row}"
                )
            session.add_example(tuple(row[:-1]), row[-1])
        program = session.learn()
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    print(f"program: {program.source()}")
    if args.describe:
        print(f"meaning: {program.describe()}")

    if args.fill:
        writer = csv.writer(sys.stdout, lineterminator="\n")
        for row in _read_rows(args.fill):
            result = program.run(tuple(row))
            writer.writerow(row + [result if result is not None else ""])
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
