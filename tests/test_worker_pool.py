"""The shared-snapshot worker-process pool behind ``repro serve --workers``.

Contract under test: workers attach catalogs by fingerprint (fork
inheritance or the snapshot spool) and return catalog-free payloads
byte-identical to in-process synthesis; a SIGKILLed worker is respawned
and the job retried (or failed with a typed ``WorkerCrashedError``) --
clients never hang, the service request cache is never left torn; a
full queue sheds load with ``PoolBusyError``.
"""

import json
import os
import signal
import time

import pytest

from repro.api.engine import Synthesizer, result_to_payload
from repro.benchsuite import all_benchmarks
from repro.config import PoolConfig
from repro.exceptions import (
    PoolBusyError,
    WorkerCrashedError,
    WorkerPoolError,
)
from repro.service import SynthesisService, WorkerPool
from repro.service.service import CACHE_HIT, CACHE_MISS
from repro.tables.catalog import Catalog
from repro.tables.table import Table

ROWS = [
    ("c1", "Microsoft"),
    ("c2", "Google"),
    ("c3", "Apple"),
    ("c4", "Facebook"),
    ("c5", "IBM"),
    ("c6", "Xerox"),
]
EXAMPLES = [(("c4 c3 c1",), "Facebook Apple Microsoft")]


def make_catalog():
    return Catalog([Table("Comp", ["Id", "Name"], ROWS, keys=[("Id",)])])


def canonical(payload):
    """The deterministic part of a result payload (timing stripped).

    ``consistent_count`` rides along as an int (it can exceed Python's
    int-to-str digit limit, so it must never be stringified).
    """
    return (
        json.dumps(
            {
                "language": payload["language"],
                "programs": [
                    (rank, score, provenance, confidence, data)
                    for rank, score, provenance, confidence, data in payload["programs"]
                ],
                "structure_size": payload["structure_size"],
            },
            sort_keys=True,
        ),
        payload["consistent_count"],
    )


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


def kill_workers(pool):
    """SIGKILL every live worker and wait for the processes to die."""
    pids = [pid for pid in pool.worker_pids() if pid is not None]
    for pid in pids:
        os.kill(pid, signal.SIGKILL)
    assert wait_until(lambda: pool.alive_count() == 0)
    return pids


class TestDispatch:
    def test_fork_inherited_catalog_matches_in_process(self):
        catalog = make_catalog()
        engine = Synthesizer(catalog)
        direct = engine.synthesize(EXAMPLES, k=2)
        with WorkerPool(2, catalogs=[catalog]) as pool:
            payload = pool.synthesize(catalog, EXAMPLES, k=2)
            assert canonical(payload) == canonical(result_to_payload(direct))
            rebuilt = engine.result_from_payload(payload)
            assert rebuilt.program.run(("c4 c3 c1",)) == direct.program.run(
                ("c4 c3 c1",)
            )

    def test_snapshot_attach_for_catalog_unseen_at_fork(self):
        catalog = make_catalog()
        engine = Synthesizer(catalog)
        direct = engine.synthesize(EXAMPLES, k=1)
        # No catalogs registered up front: the only route into a worker
        # is publish-to-spool + cold snapshot load.
        with WorkerPool(1) as pool:
            payload = pool.synthesize(catalog, EXAMPLES, k=1)
            assert canonical(payload) == canonical(result_to_payload(direct))
            assert pool.stats()["published"] == 1

    def test_task_errors_propagate_typed(self):
        catalog = make_catalog()
        from repro.exceptions import NoProgramFoundError

        with WorkerPool(1, catalogs=[catalog]) as pool:
            with pytest.raises(NoProgramFoundError):
                # Contradictory examples: no program can fit both.
                pool.synthesize(
                    catalog, [(("c1",), "A"), (("c1",), "B")], k=1
                )
            # The worker survives a task error and keeps serving.
            assert pool.alive_count() == 1
            assert pool.synthesize(catalog, EXAMPLES, k=1)["programs"]

    def test_storage_backed_catalog_refused(self):
        class StorageLike(Catalog):
            storage_backed = True

        catalog = StorageLike([Table("T", ["A", "B"], [("a", "b")])])
        with pytest.raises(WorkerPoolError, match="storage-backed"):
            WorkerPool(1, catalogs=[catalog])
        with WorkerPool(1) as pool:
            with pytest.raises(WorkerPoolError, match="storage-backed"):
                pool.submit(catalog, EXAMPLES)


class TestCrashRecovery:
    def test_sigkilled_worker_is_respawned_and_job_retried(self):
        catalog = make_catalog()
        with WorkerPool(1, catalogs=[catalog]) as pool:
            [old_pid] = kill_workers(pool)
            # The dead pipe is only discovered at dispatch: the retry
            # path must respawn and still answer this very request.
            payload = pool.synthesize(catalog, EXAMPLES, k=1, timeout=60)
            assert payload["programs"]
            stats = pool.stats()
            assert stats["respawns"] == 1
            assert stats["workers"][0]["pid"] != old_pid

    def test_exhausted_retries_fail_typed_not_hang(self):
        catalog = make_catalog()
        pool = WorkerPool(
            1, catalogs=[catalog], pool=PoolConfig(retries=0)
        )
        try:
            [old_pid] = kill_workers(pool)
            future = pool.submit(catalog, EXAMPLES, k=1)
            with pytest.raises(WorkerCrashedError) as info:
                future.result(timeout=60)  # bounded: no hung client
            assert info.value.pid == old_pid
        finally:
            pool.close()

    def test_kill_mid_job_resolves_client_either_way(self):
        catalog = make_catalog()
        with WorkerPool(1, catalogs=[catalog]) as pool:
            future = pool.submit(catalog, EXAMPLES, k=1)
            for pid in pool.worker_pids():
                if pid is not None:
                    os.kill(pid, signal.SIGKILL)
            # Raced against completion: either outcome is legal, but the
            # future must resolve promptly -- never a hang on a dead pipe.
            try:
                payload = future.result(timeout=60)
                assert payload["programs"]
            except WorkerCrashedError:
                pass

    def test_crash_leaves_no_torn_service_cache(self):
        service = SynthesisService(make_catalog())
        pool = WorkerPool(
            1,
            catalogs=[service.engine.catalog],
            pool=PoolConfig(retries=0),
        )
        service.attach_pool(pool)
        try:
            kill_workers(pool)
            with pytest.raises(WorkerCrashedError):
                service.learn(EXAMPLES)
            # The failed leader must clear its single-flight slot and
            # must not have cached a placeholder: the retry synthesizes
            # fresh (a miss), then serves from cache (a hit).
            reply = service.learn(EXAMPLES)
            assert reply.cache_status == CACHE_MISS
            assert reply.result.program.run(("c4 c3 c1",)) == (
                "Facebook Apple Microsoft"
            )
            assert service.learn(EXAMPLES).cache_status == CACHE_HIT
        finally:
            service.close()

    def test_healthz_degrades_at_zero_live_workers(self):
        service = SynthesisService(make_catalog())
        pool = WorkerPool(1, catalogs=[service.engine.catalog])
        service.attach_pool(pool)
        try:
            assert service.healthy()
            kill_workers(pool)
            assert not service.healthy()
        finally:
            service.close()


class TestBackpressure:
    def test_zero_capacity_queue_sheds_immediately(self):
        catalog = make_catalog()
        pool = WorkerPool(
            1, catalogs=[catalog], pool=PoolConfig(max_queue=0)
        )
        try:
            with pytest.raises(PoolBusyError) as info:
                pool.submit(catalog, EXAMPLES)
            assert info.value.max_queue == 0
        finally:
            pool.close()

    def test_closed_pool_refuses_typed(self):
        catalog = make_catalog()
        pool = WorkerPool(1, catalogs=[catalog])
        pool.close()
        with pytest.raises(WorkerPoolError, match="closed"):
            pool.submit(catalog, EXAMPLES)


class TestStats:
    def test_stats_shape(self):
        catalog = make_catalog()
        with WorkerPool(2, catalogs=[catalog]) as pool:
            pool.synthesize(catalog, EXAMPLES, k=1)
            stats = pool.stats()
            assert stats["size"] == 2
            assert stats["alive"] == 2
            assert stats["idle"] + stats["busy"] == 2
            assert stats["queue_depth"] == 0
            assert stats["jobs_done"] >= 1
            assert stats["respawns"] == 0
            assert len(stats["workers"]) == 2
            fingerprint = catalog.fingerprint()
            for worker in stats["workers"]:
                assert worker["alive"] is True
                assert isinstance(worker["pid"], int)
            # Warmup pre-attached the registered catalog everywhere.
            assert all(
                fingerprint in worker["attached"]
                for worker in stats["workers"]
            )


class TestOracleEquivalence:
    def test_benchsuite_catalogs_byte_identical_to_in_process(self):
        """Every benchsuite catalog, pooled vs. direct: same bytes.

        All 50 catalogs ride in by fork inheritance (warmup off: engines
        attach lazily per job); the payloads -- program ASTs, scores,
        provenance, counts -- must match the in-process oracle exactly,
        and the rebuilt programs must fill identically.
        """
        benches = all_benchmarks()
        catalogs = {b.name: b.catalog() for b in benches}
        pool = WorkerPool(
            2,
            catalogs=list(catalogs.values()),
            pool=PoolConfig(warmup=False, engine_cache=4),
        )
        mismatches = []
        try:
            futures = {
                b.name: pool.submit(catalogs[b.name], list(b.rows[:2]), k=1)
                for b in benches
            }
            for bench in benches:
                catalog = catalogs[bench.name]
                engine = Synthesizer(catalog)
                direct = engine.synthesize(list(bench.rows[:2]), k=1)
                payload = futures[bench.name].result(timeout=300)
                if canonical(payload) != canonical(result_to_payload(direct)):
                    mismatches.append(bench.name)
                    continue
                rebuilt = engine.result_from_payload(payload)
                rows = [inputs for inputs, _ in bench.rows]
                if rebuilt.fill(rows) != direct.fill(rows):
                    mismatches.append(bench.name)
        finally:
            pool.close()
        assert not mismatches, f"pool diverged from oracle on: {mismatches}"
