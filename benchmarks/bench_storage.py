"""Storage-tier benchmark: snapshot cold-start vs index rebuild.

The disk tier exists so a process restart *loads* catalog state instead
of rebuilding it: ``repro serve --snapshots`` persists the value /
occurrence / substring indexes as content-addressed snapshot blobs, and
``--storage sqlite`` keeps rows + postings in a per-catalog database
with a bounded hot cache.  This benchmark measures both cold-start
paths against the full rebuild (CSV parse + every derived index) they
replace, at 10k and 100k cells:

* ``cold_start[cells=N]`` -- ``load_catalog_snapshot`` (checksum-verified
  blob loads) + first *fill*-path requests (fingerprint, distinct scan,
  keyed lookups) vs CSV load + the same requests with every derived
  index forced.  **Gated in CI**: committed-baseline ratio at every
  size, plus the absolute >= {ABS}x acceptance floor at >= 100k cells
  (small catalogs are dominated by fixed manifest/IO costs).  This is
  the serve restart path -- the heavy matchers stream in lazily, so
  time-to-first-fill is O(blob read), not O(index rebuild).
* ``first_learn[cells=N]`` -- cold start *plus* forcing the lazily
  decoded sections a learn request needs (occurrence postings, q-gram
  postings, Aho-Corasick segments) vs the full rebuild.  Informational:
  the amortized worst case, still well above 1x.
* ``sqlite_open[cells=N]`` -- opening an existing ``SQLiteBackend`` and
  answering first probes vs ``ingest_catalog`` from scratch.
  Informational (the ingest side pays durable writes).
* ``resident_set[cells=N]`` -- allocated bytes retained after serving
  probes through the bounded hot tier vs a fully materialized in-memory
  catalog (tracemalloc).  Informational ceiling: the storage tier must
  not regress to "everything resident".

Usage::

    PYTHONPATH=src python benchmarks/bench_storage.py                # run + print
    PYTHONPATH=src python benchmarks/bench_storage.py --out BENCH_storage.json
    PYTHONPATH=src python benchmarks/bench_storage.py --quick \
        --check BENCH_storage.json            # CI: fail on >2x regression

``--check`` compares each gated speedup against the committed baseline
(floor = baseline / --factor) and additionally enforces the absolute
>= {ABS}x acceptance floor.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
import tracemalloc
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.storage import (
    SQLiteBackend,
    StorageCatalog,
    hash_sources,
    ingest_catalog,
    load_catalog_snapshot,
    save_catalog_snapshot,
)
from repro.tables.catalog import Catalog
from repro.tables.io import load_table_csv
from repro.tables.table import Table

#: Absolute acceptance floor for the gated snapshot cold-start speedup.
COLD_START_FLOOR = 10.0

NAMES = [
    "Microsoft", "Google", "Apple", "Facebook", "IBM", "Xerox", "Intel",
    "Oracle", "Cisco", "Adobe", "Nvidia", "Amazon", "Netflix", "Tesla",
    "Siemens", "Philips",
]


def write_csv(path: Path, num_rows: int) -> None:
    lines = ["Id,Name"]
    lines.extend(
        f"c{r},{NAMES[r % len(NAMES)]}{r}" for r in range(num_rows)
    )
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def force_derived(catalog: Catalog) -> Catalog:
    """Materialize every index a serving process would answer from."""
    catalog.freeze()
    catalog.substring_index().build()
    catalog.fingerprint()
    catalog.distinct_values()
    for table in catalog.tables():
        table.find_rows({table.columns[0]: table.rows[-1][0]})
    for value in catalog.tables()[0].rows[-1]:
        catalog.occurrences_of(value)
    return catalog


def rebuild_from_csv(csv: Path) -> Catalog:
    return force_derived(Catalog([load_table_csv(csv)]))


def fill_probe(catalog, ids: List[str]) -> None:
    """The fill-path requests a freshly restarted server serves first."""
    catalog.fingerprint()
    catalog.distinct_values()
    table = catalog.tables()[0]
    for value in ids:
        table.row_by_key(("Id",), (value,))


def learn_probe(catalog, values: List[str]) -> None:
    """Forces every lazily built section learn/lookup requests touch.

    Substring matchers, occurrence postings and the per-column row
    postings (``find_rows``) are lazy in *every* tier -- memory-built,
    snapshot-loaded and SQLite-backed alike -- so they belong to this
    warm probe, not the cold fill path.
    """
    index = catalog.substring_index().build()
    table = catalog.tables()[0]
    for value in values:
        catalog.occurrences_of(value)
        index.overlapping(value, 1)
        table.find_rows({"Name": value})


def bench_cold_start(num_rows: int, repeats: int) -> Dict[str, Dict[str, float]]:
    """Both the gated ``cold_start`` and informational ``first_learn`` rows."""
    tmp = Path(tempfile.mkdtemp(prefix="bench-storage-"))
    try:
        csv = tmp / "Comp.csv"
        write_csv(csv, num_rows)
        sources = hash_sources([csv])
        built = rebuild_from_csv(csv)
        snap_dir = tmp / ".snapshots"
        save_catalog_snapshot(snap_dir, built, sources=sources)
        ids = [f"c{r}" for r in range(0, num_rows, max(1, num_rows // 8))]
        values = list(built.distinct_values()[:8])

        cold_times, cold_learn_times = [], []
        for _ in range(repeats):
            started = time.perf_counter()
            loaded = load_catalog_snapshot(snap_dir, sources=sources)
            fill_probe(loaded, ids)
            cold_times.append(time.perf_counter() - started)
            learn_probe(loaded, values)
            cold_learn_times.append(time.perf_counter() - started)

        # Fill-ready rebuild: CSV parse + catalog construction (value
        # index, fingerprint) + the same keyed probes.  The substring
        # matchers are lazy in the memory tier too, so they belong to
        # the learn-ready comparison below, not here.
        rebuild_times = []
        for _ in range(repeats):
            started = time.perf_counter()
            quick = Catalog([load_table_csv(csv)])
            quick.freeze()
            quick.fingerprint()
            fill_probe(quick, ids)
            rebuild_times.append(time.perf_counter() - started)

        # Learn-ready rebuild: everything forced, matching learn_probe.
        rebuild_learn_times = []
        for _ in range(repeats):
            started = time.perf_counter()
            rebuilt = rebuild_from_csv(csv)
            fill_probe(rebuilt, ids)
            learn_probe(rebuilt, values)
            rebuild_learn_times.append(time.perf_counter() - started)

        assert loaded.fingerprint() == rebuilt.fingerprint()
        assert loaded.distinct_values() == rebuilt.distinct_values()
        for value in values:
            assert loaded.occurrences_of(value) == rebuilt.occurrences_of(value)
        cold_s, rebuild_s = min(cold_times), min(rebuild_times)
        learn_s, rebuild_learn_s = min(cold_learn_times), min(rebuild_learn_times)
        return {
            "cold_start": {
                "cells": num_rows * 2,
                "cold_s": cold_s,
                "rebuild_s": rebuild_s,
                "speedup": rebuild_s / cold_s,
            },
            "first_learn": {
                "cells": num_rows * 2,
                "cold_s": learn_s,
                "rebuild_s": rebuild_learn_s,
                "speedup": rebuild_learn_s / learn_s,
            },
        }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def bench_sqlite_open(num_rows: int, repeats: int) -> Dict[str, float]:
    tmp = Path(tempfile.mkdtemp(prefix="bench-storage-"))
    try:
        csv = tmp / "Comp.csv"
        write_csv(csv, num_rows)
        built = rebuild_from_csv(csv)
        path = tmp / "catalog.db"
        ingest_catalog(path, built)
        probes = list(built.distinct_values()[:8])

        open_times = []
        for _ in range(repeats):
            started = time.perf_counter()
            backend = SQLiteBackend(path)
            catalog = StorageCatalog(backend)
            learn_probe(catalog, probes)
            open_times.append(time.perf_counter() - started)
            backend.close()

        ingest_times = []
        for index in range(repeats):
            fresh = tmp / f"ingest-{index}.db"
            started = time.perf_counter()
            ingest_catalog(fresh, built)
            backend = SQLiteBackend(fresh)
            learn_probe(StorageCatalog(backend), probes)
            ingest_times.append(time.perf_counter() - started)
            backend.close()

        open_s = min(open_times)
        ingest_s = min(ingest_times)
        return {
            "cells": num_rows * 2,
            "open_s": open_s,
            "ingest_s": ingest_s,
            "speedup": ingest_s / open_s,
        }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def bench_resident_set(num_rows: int) -> Dict[str, float]:
    tmp = Path(tempfile.mkdtemp(prefix="bench-storage-"))
    try:
        csv = tmp / "Comp.csv"
        write_csv(csv, num_rows)
        built = rebuild_from_csv(csv)
        path = tmp / "catalog.db"
        ingest_catalog(path, built)
        probes = list(built.distinct_values()[:64])
        del built

        tracemalloc.start()
        resident = force_derived(Catalog([load_table_csv(csv)]))
        learn_probe(resident, probes[:8])
        memory_bytes, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        del resident

        tracemalloc.start()
        backend = SQLiteBackend(path, cache_limit=4096)
        catalog = StorageCatalog(backend)
        snapshot = catalog.backend.snapshot()
        for value in probes:
            snapshot.occurrences(value)
        storage_bytes, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        backend.close()
        return {
            "cells": num_rows * 2,
            "memory_tier_bytes": float(memory_bytes),
            "storage_tier_bytes": float(storage_bytes),
            "ratio": memory_bytes / max(storage_bytes, 1),
        }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


#: Rows whose ``speedup`` is floor-gated by ``--check``.
GATED_PREFIX = "cold_start"


def run_suite(quick: bool) -> Dict[str, Dict[str, float]]:
    # 10k and 100k cells (2 columns); stable names so --quick runs can
    # be checked against a full-run baseline.
    sizes = [5_000, 50_000]
    results: Dict[str, Dict[str, float]] = {}
    for num_rows in sizes:
        repeats = (2 if num_rows >= 50_000 else 3) if quick else 5
        cells = num_rows * 2
        print(f"running cold_start[cells={cells}] ...", flush=True)
        rows = bench_cold_start(num_rows, repeats)
        results[f"cold_start[cells={cells}]"] = rows["cold_start"]
        results[f"first_learn[cells={cells}]"] = rows["first_learn"]
        name = f"sqlite_open[cells={cells}]"
        print(f"running {name} ...", flush=True)
        results[name] = bench_sqlite_open(num_rows, max(1, repeats - 1))
    name = "resident_set[cells=100000]"
    print(f"running {name} ...", flush=True)
    results[name] = bench_resident_set(50_000)
    return results


def render(results: Dict[str, Dict[str, float]]) -> List[str]:
    lines = []
    for name, row in results.items():
        if "cold_s" in row:
            lines.append(
                f"{name}: cold {row['cold_s'] * 1e3:.1f}ms | rebuild "
                f"{row['rebuild_s'] * 1e3:.0f}ms | speedup {row['speedup']:.0f}x"
            )
        elif "open_s" in row:
            lines.append(
                f"{name}: open {row['open_s'] * 1e3:.1f}ms | ingest "
                f"{row['ingest_s'] * 1e3:.0f}ms | speedup {row['speedup']:.0f}x"
            )
        else:
            lines.append(
                f"{name}: hot tier {row['storage_tier_bytes'] / 1e6:.1f}MB vs "
                f"resident {row['memory_tier_bytes'] / 1e6:.1f}MB "
                f"({row['ratio']:.0f}x smaller)"
            )
    return lines


def check_regression(
    results: Dict[str, Dict[str, float]], baseline_path: Path, factor: float
) -> int:
    baseline = json.loads(baseline_path.read_text())["results"]
    failures = []
    for name, row in results.items():
        if not name.startswith(GATED_PREFIX):
            if "speedup" in row:
                print(f"      info  {name}: speedup {row['speedup']:.1f}x (not gated)")
            else:
                print(
                    f"      info  {name}: hot tier "
                    f"{row['storage_tier_bytes'] / 1e6:.1f}MB vs resident "
                    f"{row['memory_tier_bytes'] / 1e6:.1f}MB (not gated)"
                )
            continue
        # The absolute acceptance floor is defined on the 100k-cell
        # catalog (small catalogs are dominated by fixed manifest/IO
        # costs); the smaller sizes are held to the baseline ratio.
        floors = [COLD_START_FLOOR] if row["cells"] >= 100_000 else []
        reference = baseline.get(name)
        if reference is not None:
            floors.append(reference["speedup"] / factor)
        if not floors:
            continue
        floor = max(floors)
        status = "ok" if row["speedup"] >= floor else "REGRESSION"
        print(
            f"{status:>10}  {name}: speedup {row['speedup']:.0f}x "
            f"(floor {floor:.0f}x, absolute acceptance floor "
            f"{COLD_START_FLOOR:.0f}x at >=100k cells)"
        )
        if status != "ok":
            failures.append(name)
    if failures:
        print(f"\nperf regression in: {', '.join(failures)}")
        return 1
    print("\nno perf regressions")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small sizes (CI smoke)")
    parser.add_argument("--out", type=Path, help="write results JSON here")
    parser.add_argument("--check", type=Path, help="baseline JSON to compare against")
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="fail when a gated speedup falls below baseline/factor (default 2)",
    )
    args = parser.parse_args(argv)

    results = run_suite(args.quick)
    print()
    for line in render(results):
        print(line)

    if args.out:
        payload = {
            "meta": {
                "python": sys.version.split()[0],
                "cpu_count": os.cpu_count() or 1,
                "timestamp": datetime.now(timezone.utc).isoformat(
                    timespec="seconds"
                ),
                "quick": args.quick,
                "note": "speedups are machine-relative (same-run cold-start "
                "vs rebuild); refresh with: PYTHONPATH=src python "
                "benchmarks/bench_storage.py --out BENCH_storage.json",
            },
            "results": results,
        }
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.out}")

    if args.check:
        print()
        return check_regression(results, args.check, args.factor)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
