"""Composition and well-formedness of the 50-problem benchmark suite (§7)."""

import pytest

from repro.benchsuite import all_benchmarks, get_benchmark
from repro.exceptions import NoProgramFoundError


class TestComposition:
    def test_exactly_fifty_benchmarks(self):
        assert len(all_benchmarks()) == 50

    def test_paper_split_12_lookup_38_semantic(self):
        benchmarks = all_benchmarks()
        lookup = [b for b in benchmarks if b.language_class == "Lt"]
        semantic = [b for b in benchmarks if b.language_class == "Lu"]
        assert len(lookup) == 12
        assert len(semantic) == 38

    def test_idents_dense_and_ordered(self):
        idents = [b.ident for b in all_benchmarks()]
        assert idents == list(range(1, 51))

    def test_names_unique(self):
        names = [b.name for b in all_benchmarks()]
        assert len(set(names)) == 50

    def test_every_benchmark_has_five_rows(self):
        for benchmark in all_benchmarks():
            assert len(benchmark.rows) >= 5, benchmark.name

    def test_paper_examples_present(self):
        for name in (
            "ex1-markup-price",
            "ex2-customer-price",
            "ex3-chain-lookup",
            "ex4-name-initial",
            "ex5-bike-price",
            "ex6-company-codes",
            "ex7-spot-time",
            "ex8-date-format",
        ):
            assert get_benchmark(name) is not None

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            get_benchmark("no-such-benchmark")

    def test_row_arity_consistent(self):
        for benchmark in all_benchmarks():
            arity = benchmark.num_inputs
            for inputs, output in benchmark.rows:
                assert len(inputs) == arity, benchmark.name
                assert isinstance(output, str)

    def test_catalogs_build(self):
        for benchmark in all_benchmarks():
            catalog = benchmark.catalog()
            # Lu benchmarks may be purely syntactic (no tables at all).
            assert catalog.total_entries >= 0


class TestLookupClassSolvableInLt:
    """The 12 Lt benchmarks must be solvable in the pure lookup language."""

    @pytest.mark.parametrize(
        "name",
        [b.name for b in all_benchmarks() if b.language_class == "Lt"],
    )
    def test_lookup_language_learns(self, name):
        benchmark = get_benchmark(name)
        session = benchmark.session(language="lookup")
        # Feed up to three examples, then check the rest.
        for inputs, output in benchmark.rows[:3]:
            session.add_example(inputs, output)
        program = session.learn()
        for inputs, output in benchmark.rows:
            assert program.run(inputs) == output, f"{name}: {inputs}"


class TestSemanticClassNotInLt:
    """A sample of Lu benchmarks must NOT be expressible in Lt alone."""

    @pytest.mark.parametrize(
        "name",
        ["ex5-bike-price", "ex6-company-codes", "ex8-date-format", "name-swap"],
    )
    def test_lookup_language_fails(self, name):
        benchmark = get_benchmark(name)
        session = benchmark.session(language="lookup")
        with pytest.raises(NoProgramFoundError):
            for inputs, output in benchmark.rows[:3]:
                session.add_example(inputs, output)
