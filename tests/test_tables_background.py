"""Unit tests for the §6 background-knowledge tables."""

import pytest

from repro.tables.background import (
    available_background_tables,
    background_catalog,
    background_table,
    currency_table,
    date_ordinal_table,
    month_table,
    phone_isd_table,
    street_suffix_table,
    time_table,
    us_state_table,
    weekday_table,
)


class TestTimeTable:
    def test_paper_entries(self):
        # Paper populates (0,0,AM) ... (11,11,AM), (12,12,PM), (13,1,PM) ... (23,11,PM).
        table = time_table()
        assert table.lookup("12Hour", {"24Hour": "0"}) == "0"
        assert table.lookup("AMPM", {"24Hour": "11"}) == "AM"
        assert table.lookup("12Hour", {"24Hour": "12"}) == "12"
        assert table.lookup("AMPM", {"24Hour": "12"}) == "PM"
        assert table.lookup("12Hour", {"24Hour": "13"}) == "1"
        assert table.lookup("12Hour", {"24Hour": "23"}) == "11"

    def test_padded_key_for_spot_times(self):
        table = time_table()
        assert table.lookup("12Hour", {"24HourPad": "06"}) == "6"
        assert table.lookup("AMPM", {"24HourPad": "18"}) == "PM"

    def test_row_count(self):
        assert time_table().num_rows == 24


class TestMonthTable:
    def test_paper_entries(self):
        table = month_table()
        assert table.lookup("MW", {"MN": "1"}) == "January"
        assert table.lookup("MW", {"MN": "12"}) == "December"
        assert table.lookup("MN", {"MW": "June"}) == "6"

    def test_abbreviations(self):
        table = month_table()
        assert table.lookup("MA", {"MN": "6"}) == "Jun"
        assert table.lookup("MN", {"MA": "Sep"}) == "9"

    def test_both_columns_are_keys(self):
        keys = month_table().keys
        assert ("MN",) in keys and ("MW",) in keys


class TestDateOrdTable:
    def test_paper_entries(self):
        table = date_ordinal_table()
        assert table.lookup("Ord", {"Num": "1"}) == "st"
        assert table.lookup("Ord", {"Num": "2"}) == "nd"
        assert table.lookup("Ord", {"Num": "3"}) == "rd"
        assert table.lookup("Ord", {"Num": "4"}) == "th"
        assert table.lookup("Ord", {"Num": "31"}) == "st"

    def test_teens_are_th(self):
        table = date_ordinal_table()
        for day in ("11", "12", "13"):
            assert table.lookup("Ord", {"Num": day}) == "th"

    def test_31_entries(self):
        assert date_ordinal_table().num_rows == 31


class TestOtherTables:
    def test_weekday(self):
        table = weekday_table()
        assert table.lookup("DW", {"DN": "1"}) == "Monday"
        assert table.lookup("DA", {"DW": "Sunday"}) == "Sun"

    def test_phone_isd_turkey(self):
        # Paper §6: "90 is the ISD code for Turkey".
        table = phone_isd_table()
        assert table.lookup("Country", {"Code": "90"}) == "Turkey"
        assert table.lookup("Code", {"Country": "India"}) == "91"

    def test_currency(self):
        table = currency_table()
        assert table.lookup("Symbol", {"Code": "USD"}) == "$"
        assert table.lookup("Code", {"CName": "Euro"}) == "EUR"

    def test_us_state(self):
        table = us_state_table()
        assert table.lookup("Abbrev", {"State": "Texas"}) == "TX"

    def test_street_suffix(self):
        table = street_suffix_table()
        assert table.lookup("Short", {"Long": "Boulevard"}) == "Blvd"


class TestCatalogBuilders:
    def test_all_tables_available(self):
        names = available_background_tables()
        assert "Time" in names and "Month" in names and "DateOrd" in names

    def test_background_catalog_default_has_all(self):
        catalog = background_catalog()
        assert len(catalog) == len(available_background_tables())

    def test_background_catalog_subset(self):
        catalog = background_catalog(["Month", "DateOrd"])
        assert len(catalog) == 2

    def test_unknown_table_name(self):
        with pytest.raises(KeyError):
            background_table("Nope")
