"""Tunable parameters for the synthesis algorithms.

The paper fixes most of these implicitly (token set, depth bound k = number
of tables, the "stronger restriction" on relaxed reachability); we expose
them so the ablation benchmarks in ``benchmarks/bench_ablations.py`` can
toggle each design choice and measure its effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple


@dataclass(frozen=True)
class RankingWeights:
    """Cost-model weights implementing the partial orders of §4.4 and §5.4.

    Lower cost = preferred.  Every preference the paper states maps to one
    weight here:

    * fewer/shorter `Concatenate` pieces -> ``edge_base`` (per piece),
    * fewer constants -> constant atoms cost ``const_atom_base`` plus
      ``const_atom_per_char`` per character, so extracting or looking up a
      long string always beats hard-coding it, while short separators stay
      affordable; ``const_predicate`` makes constant lookup keys a last
      resort,
    * lookups over constants -> ``select_base`` + cheap node references,
    * smaller lookup depth -> ``select_base`` accumulates per nesting level,
    * distinct tables for joins -> ``self_join_penalty``,
    * regex positions generalize better than absolute ones -> ``cpos_entry``
      costs more than ``regex_entry``.
    """

    edge_base: float = 8.0
    const_atom_base: float = 10.0
    const_atom_per_char: float = 28.0
    ref_atom: float = 2.0
    substr_atom: float = 6.0
    cpos_entry: float = 5.0
    regex_entry: float = 1.0
    regex_token: float = 0.5
    var_expr: float = 1.0
    select_base: float = 12.0
    const_predicate: float = 30.0
    node_predicate: float = 2.0
    self_join_penalty: float = 20.0
    #: Extra cost of a predicate whose node binding was resolved by an
    #: *approximate* matcher (repro.matching), scaled by how unsure the
    #: match is: ``approx_predicate * (1 - confidence)``.  Exact bindings
    #: (confidence 1.0) add nothing, so default-config ranking is
    #: untouched; among approximate candidates, higher-confidence
    #: strategies rank first.
    approx_predicate: float = 50.0


@dataclass(frozen=True)
class SynthesisConfig:
    """Knobs for GenerateStr/Intersect in all three languages.

    Attributes:
        max_tokenseq_len: maximum number of tokens in a ``TokenSeq`` used in
            generated position expressions (paper examples all use 1).
        depth_bound: the paper's k; ``None`` means "number of tables in the
            catalog" (§4.3).
        max_reachable_nodes: safety valve on the node set size (the paper's
            t); reaching it stops the reachability loop early.
        min_overlap_len: minimum length of a proper-substring overlap that
            triggers relaxed reachability in ``GenerateStr'_t`` (§5.3).
        relaxed_reachability: when False, the semantic generator falls back
            to the exact-equality trigger of plain ``GenerateStr_t`` -- the
            ablation for §5.3's substring-based reachability.
        include_ref_atoms: include whole-string node references ``e_t`` as
            atomic expressions (the `f_s := e_t` production); disabling is
            an ablation only.
        use_substring_index: answer the §5.3 substring-overlap trigger with
            the catalog's Aho-Corasick/q-gram index instead of pairwise
            ``in`` scans over every untriggered entry.  False selects the
            naive scan -- the equivalence oracle for the index.
        use_occurrence_index: drive ``generate_dag``'s substring loop from a
            per-source occurrence index instead of repeated ``str.find``
            scans.  False selects the naive scan.
        use_table_index: serve ``Table.find_rows``/``Table.lookup`` from the
            per-column value -> rows inverted index instead of full row
            scans.  False selects the naive scan.  ``Synthesizer`` and
            ``SynthesisSession`` stamp this onto their catalog
            (``Catalog.use_table_index``), which ``Select`` evaluation
            consults at serve time.
        use_worklist_pruning: compute the emptiness fixpoint of Intersect
            with a dependency-driven worklist instead of repeated full-node
            sweeps.  False selects the naive sweeps.
        use_lazy_intersection: build the ``intersect_dags`` product with a
            structural forward-BFS plus a co-reachability sweep *before*
            any atom intersection is attempted, so atoms are only merged
            on edges that can sit on a start→accept path.  False selects
            the original eager product (atom intersection on every
            forward-reachable edge) -- the equivalence oracle.
        use_intersection_cache: serve ``intersect_position_sets`` from the
            interned position-set memo (hit/miss/eviction stats via
            ``repro.syntactic.positions.intersection_cache_stats``), so
            recurring pairs across edges, examples and ``Synthesizer``
            calls are intersected once.  False recomputes every pair --
            the equivalence oracle.
        use_storage_backend: serve a storage-backed catalog
            (``repro.storage.StorageCatalog``) directly through its
            backend -- rows, postings and substring queries answered
            from the storage tier with a bounded hot cache.  False makes
            ``Synthesizer`` *materialize* the catalog into plain
            in-memory structures first -- the equivalence oracle for the
            whole storage tier (tests/test_storage_equivalence.py).
            No effect on catalogs that are not storage-backed.
        use_compiled_fill: serve ``Program.fill``/``fill_aligned`` through
            the compiled execution plan (``repro.engine.compile``:
            pre-resolved lookup handles, fused Selects, precompiled
            position closures, constant folding) instead of per-row AST
            interpretation.  False selects the interpreter -- the
            byte-for-byte equivalence oracle
            (tests/test_compiled_fill_equivalence.py).  Programs that
            cannot be compiled (plugin nodes, storage-backed catalogs)
            fall back to the interpreter automatically.
        matchers: the value-matching strategies ``Select`` lookups and the
            lookup generator use, in priority order
            (``repro.matching.build_pipeline``).  The default
            ``("exact",)`` is byte-identical to the hard-wired equality of
            every prior release: programs, ranks, scores and fills do not
            change (tests/test_matching_equivalence.py).  Adding
            ``"canonical"`` (case/whitespace/unicode-NFKC
            canonicalization), ``"fuzzy"`` (bounded edit distance +
            q-gram similarity over the existing substring-index grams) or
            ``"alias"`` (per-catalog synonym tables) surfaces approximate
            hits as *lower-confidence* candidates: exact matches always
            rank strictly first, and multiple equally-plausible
            approximate hits flow into ``result.ambiguous``.
        weights: the ranking cost model.

    The ``use_*_index``/``use_worklist_pruning``/``use_lazy_intersection``/
    ``use_intersection_cache`` flags never change *what* is synthesized --
    both paths are required to produce identical structures and results
    (tests/test_indexing_equivalence.py,
    tests/test_lazy_intersection_equivalence.py) -- only how fast; they
    exist as equivalence oracles and for the perf benchmarks.
    """

    max_tokenseq_len: int = 1
    depth_bound: Optional[int] = None
    max_reachable_nodes: int = 2000
    min_overlap_len: int = 1
    relaxed_reachability: bool = True
    include_ref_atoms: bool = True
    use_substring_index: bool = True
    use_occurrence_index: bool = True
    use_table_index: bool = True
    use_worklist_pruning: bool = True
    use_lazy_intersection: bool = True
    use_intersection_cache: bool = True
    use_storage_backend: bool = True
    use_compiled_fill: bool = True
    matchers: Tuple[str, ...] = ("exact",)
    weights: RankingWeights = field(default_factory=RankingWeights)

    def __post_init__(self) -> None:
        # JSON round-trips (worker-pool wire form, request payloads) hand
        # back lists; normalize so signatures and equality stay stable.
        if not isinstance(self.matchers, tuple):
            object.__setattr__(self, "matchers", tuple(self.matchers))

    def with_weights(self, **kwargs) -> "SynthesisConfig":
        """A copy of this config with some ranking weights replaced."""
        return replace(self, weights=replace(self.weights, **kwargs))

    def with_matchers(self, *names: str) -> "SynthesisConfig":
        """A copy of this config using the given matcher strategies."""
        flat = []
        for name in names:
            flat.extend(part.strip() for part in name.split(",") if part.strip())
        return replace(self, matchers=tuple(flat) or ("exact",))

    def signature(self) -> str:
        """A stable, process-independent rendering of every knob.

        Equal configs produce equal signatures (field order is the class
        definition order, values are JSON), so the service request cache
        can key on it without hashing live objects.
        """
        from dataclasses import asdict
        import json

        return json.dumps(asdict(self), sort_keys=True, separators=(",", ":"))

    def without_indexes(self) -> "SynthesisConfig":
        """A copy running every hot path naively (the equivalence oracle)."""
        return replace(
            self,
            use_substring_index=False,
            use_occurrence_index=False,
            use_table_index=False,
            use_worklist_pruning=False,
            use_lazy_intersection=False,
            use_intersection_cache=False,
            use_storage_backend=False,
            use_compiled_fill=False,
        )


@dataclass(frozen=True)
class PoolConfig:
    """Sizing and lifecycle knobs for the worker-process pool.

    Attributes:
        workers: number of worker processes; 0 disables the pool (all
            synthesis runs in-process, the pre-PR-7 behavior).
        max_queue: pending-request limit before ``submit`` raises
            :class:`repro.exceptions.PoolBusyError`; ``None`` removes the
            limit (used by ``run_batch``, which bounds fan-out itself).
        retries: how many times a job is retried on a freshly respawned
            worker after a crash before failing with ``WorkerCrashedError``.
        warmup: pre-attach the pool's initial catalogs on every worker at
            construction instead of on first request.
        engine_cache: per-worker LRU size of attached engines (one per
            catalog fingerprint).
        spool_keep: how many published snapshot directories the parent
            keeps in the shared spool before pruning the oldest.
        job_timeout: seconds a dispatcher waits for a worker's reply
            before declaring it wedged (killed + respawned); ``None``
            waits forever.
        start_method: multiprocessing start method (``"fork"``,
            ``"spawn"``, ``"forkserver"``); ``None`` picks ``fork`` where
            available (zero-copy catalog inheritance) and falls back to
            the platform default elsewhere.
    """

    workers: int = 0
    max_queue: Optional[int] = 64
    retries: int = 1
    warmup: bool = True
    engine_cache: int = 8
    spool_keep: int = 16
    job_timeout: Optional[float] = None
    start_method: Optional[str] = None


DEFAULT_CONFIG = SynthesisConfig()
DEFAULT_POOL_CONFIG = PoolConfig()
