"""Unit tests for Catalog and the value occurrence index."""

import pytest

from repro.exceptions import TableError, UnknownTableError
from repro.tables import Catalog, Occurrence, Table


def small_catalog():
    markup = Table(
        "MarkupRec",
        ["Id", "Name", "Markup"],
        [
            ("S30", "Stroller", "30%"),
            ("B56", "Bib", "45%"),
            ("D32", "Diapers", "35%"),
        ],
        keys=[("Id",), ("Name",)],
    )
    cost = Table(
        "CostRec",
        ["Id", "Date", "Price"],
        [
            ("S30", "12/2010", "$145.67"),
            ("S30", "11/2010", "$142.38"),
            ("B56", "12/2010", "$3.56"),
        ],
        keys=[("Id", "Date")],
    )
    return Catalog([markup, cost])


class TestBasics:
    def test_contains_and_len(self):
        catalog = small_catalog()
        assert "MarkupRec" in catalog and "CostRec" in catalog
        assert len(catalog) == 2

    def test_table_lookup(self):
        assert small_catalog().table("MarkupRec").name == "MarkupRec"

    def test_unknown_table_raises(self):
        with pytest.raises(UnknownTableError):
            small_catalog().table("Nope")

    def test_duplicate_table_rejected(self):
        catalog = small_catalog()
        with pytest.raises(TableError):
            catalog.add(Table("CostRec", ["a"], [("x",)]))

    def test_iteration_preserves_order(self):
        assert [t.name for t in small_catalog()] == ["MarkupRec", "CostRec"]

    def test_total_entries(self):
        assert small_catalog().total_entries == 3 * 3 + 3 * 3

    def test_default_depth_bound_is_table_count(self):
        assert small_catalog().default_depth_bound() == 2
        assert Catalog().default_depth_bound() == 1


class TestValueIndex:
    def test_occurrences_single(self):
        occurrences = small_catalog().occurrences_of("Stroller")
        assert occurrences == (Occurrence("MarkupRec", "Name", 0),)

    def test_occurrences_across_tables(self):
        occurrences = small_catalog().occurrences_of("S30")
        tables = {o.table for o in occurrences}
        assert tables == {"MarkupRec", "CostRec"}
        assert len(occurrences) == 3

    def test_occurrences_missing_value(self):
        assert small_catalog().occurrences_of("zzz") == ()

    def test_occurrences_cached(self):
        catalog = small_catalog()
        assert catalog.occurrences_of("S30") is catalog.occurrences_of("S30")

    def test_distinct_values_contains_cells(self):
        values = set(small_catalog().distinct_values())
        assert {"S30", "$3.56", "12/2010", "Bib"} <= values

    def test_distinct_values_cached_and_invalidated(self):
        catalog = small_catalog()
        first = catalog.distinct_values()
        assert catalog.distinct_values() is first
        catalog.add(Table("Extra", ["a"], [("brand-new",)]))
        assert "brand-new" in catalog.distinct_values()
        assert catalog.occurrences_of("brand-new") == (
            Occurrence("Extra", "a", 0),
        )


class TestSubstringIndex:
    def test_lazy_and_cached(self):
        catalog = small_catalog()
        index = catalog.substring_index()
        assert catalog.substring_index() is index

    def test_rebuilt_after_add(self):
        catalog = small_catalog()
        index = catalog.substring_index()
        catalog.add(Table("Extra", ["a"], [("brand-new",)]))
        rebuilt = catalog.substring_index()
        assert rebuilt is not index
        assert rebuilt.id_of("brand-new") is not None

    def test_ids_follow_distinct_value_order(self):
        catalog = small_catalog()
        index = catalog.substring_index()
        non_empty = [v for v in catalog.distinct_values() if v]
        assert list(index.values) == non_empty


class TestMerge:
    def test_merged_with_background(self):
        from repro.tables.background import background_catalog

        merged = small_catalog().merged_with(background_catalog(["Month"]))
        assert "Month" in merged
        assert "MarkupRec" in merged
        # Original catalogs are untouched.
        assert "Month" not in small_catalog()
