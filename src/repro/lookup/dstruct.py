"""The data structure Dt for sets of Lt expressions (paper §4.2, Figure 3).

A :class:`NodeStore` is the tuple (η̃, η_t, Progs): nodes are dense integer
ids; ``vals[η]`` is the string the node evaluates to on this example (pairs
of originals after intersection carry ``None``); ``progs[η]`` is the set of
generalized expressions for the node:

* :class:`VarEntry` -- the input variable ``v_i``,
* :class:`GenSelect` -- ``Select(C, T, B)`` whose generalized condition B
  is a shared per-row :class:`RowCondition`: one conjunction of
  :class:`GenPredicate` per candidate key of the table.

A generalized predicate holds up to two alternatives for its right-hand
side, exactly as in the paper (``C = {s, η}``): a constant string and/or a
node reference.  The semantic language replaces both with a :class:`Dag`
of syntactic expressions (§5.2); the same classes carry that variant so
Intersect/measure code is shared.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.syntactic.dag import Dag


@dataclass(frozen=True)
class VarEntry:
    """Progs entry for the input variable ``v_index``."""

    index: int

    def __str__(self) -> str:
        return f"v{self.index + 1}"


@dataclass
class GenPredicate:
    """Generalized predicate for one candidate-key column.

    Lt shape: ``column = {constant, node}`` (either may be absent).
    Lu shape: ``column = dag`` (a Dag of syntactic expressions over nodes).
    """

    column: str
    constant: Optional[str] = None
    node: Optional[int] = None
    dag: Optional[Dag] = None
    #: How the node binding was resolved (``repro.matching`` provenance).
    #: Exact bindings -- the only kind under the default matcher spec --
    #: carry ``("exact", 1.0)``; an approximate matcher stamps its strategy
    #: name and confidence so ranking can penalize and results can report.
    node_strategy: str = "exact"
    node_confidence: float = 1.0

    def is_satisfiable(self) -> bool:
        """Syntactically non-empty (ignoring node emptiness, checked later)."""
        return self.constant is not None or self.node is not None or self.dag is not None

    def __str__(self) -> str:
        if self.dag is not None:
            return f"{self.column} = <dag:{len(self.dag.edges)} edges>"
        options = []
        if self.constant is not None:
            options.append(repr(self.constant))
        if self.node is not None:
            if self.node_confidence < 1.0:
                options.append(
                    f"η{self.node}~{self.node_strategy}:{self.node_confidence:.2f}"
                )
            else:
                options.append(f"η{self.node}")
        return f"{self.column} = {{{', '.join(options)}}}"


@dataclass
class RowCondition:
    """The generalized condition B for one table row, shared by all selects
    of that row (the paper's sharing of updated conditions, Fig 5(a) l.15).

    ``keys[i]`` is the conjunction of generalized predicates for the i-th
    candidate key of the table.
    """

    table: str
    row: int
    keys: List[List[GenPredicate]]

    def __str__(self) -> str:
        rendered = [
            " ∧ ".join(str(p) for p in predicates) for predicates in self.keys
        ]
        return " | ".join(rendered) if rendered else "⊥"


@dataclass
class GenSelect:
    """Generalized select ``Select(column, table, B)`` with shared B."""

    column: str
    table: str
    cond: RowCondition

    def __str__(self) -> str:
        return f"Select({self.column}, {self.table}, {self.cond})"


ProgEntry = Union[VarEntry, GenSelect]


class NodeStore:
    """The (η̃, η_t, Progs) triple plus the val/val⁻¹ maps of Figure 5(a)."""

    __slots__ = ("vals", "progs", "val_to_node", "target", "depths", "depth_limit")

    def __init__(self, depth_limit: int = 8) -> None:
        self.vals: List[Optional[str]] = []
        self.progs: List[List[ProgEntry]] = []
        self.val_to_node: Dict[str, int] = {}
        self.target: Optional[int] = None
        self.depths: List[int] = []
        #: Select-nesting budget for counting/extraction/enumeration.  The
        #: structure is k-complete (Def. 1), so measures are taken over the
        #: depth-bounded denotation; stores can be self-referential (see
        #: DESIGN.md note 3) and the budget keeps every walk finite.
        self.depth_limit = depth_limit

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.vals)

    def new_node(self, value: Optional[str], depth: int = 0) -> int:
        """Allocate a node; registers val⁻¹ for string-valued nodes."""
        node = len(self.vals)
        self.vals.append(value)
        self.progs.append([])
        self.depths.append(depth)
        if value is not None:
            self.val_to_node[value] = node
        return node

    def ensure_node(self, value: str, depth: int = 0) -> Tuple[int, bool]:
        """Node for ``value`` (the paper's val⁻¹), creating it if missing.

        Returns (node, created).
        """
        existing = self.val_to_node.get(value)
        if existing is not None:
            return existing, False
        return self.new_node(value, depth), True

    def node_for(self, value: str) -> Optional[int]:
        """val⁻¹(value) or None."""
        return self.val_to_node.get(value)

    # ------------------------------------------------------------------
    def reference_edges(self, node: int) -> Iterable[int]:
        """Nodes referenced by ``node``'s generalized predicates."""
        for entry in self.progs[node]:
            if isinstance(entry, GenSelect):
                for predicates in entry.cond.keys:
                    for predicate in predicates:
                        if predicate.node is not None:
                            yield predicate.node
                        if predicate.dag is not None:
                            for options in predicate.dag.edges.values():
                                for atom in options:
                                    source = getattr(atom, "source", None)
                                    if source is not None:
                                        yield source

    def reachable_from(self, roots: Iterable[int]) -> Set[int]:
        """Nodes reachable from ``roots`` through predicate references."""
        seen: Set[int] = set()
        stack = [root for root in roots if root is not None]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            for successor in self.reference_edges(node):
                if successor not in seen:
                    stack.append(successor)
        return seen

    def restrict_to(self, roots: Iterable[int]) -> Set[int]:
        """Empty the Progs of nodes unreachable from ``roots``; return alive.

        The target-component sweep shared by ``prune_store`` and
        ``prune_semantic``: counting and extraction are root-rooted, so
        unreachable nodes are invisible -- emptying them keeps the
        Figure 11(b) size a property of the denoted program set rather
        than of construction order.
        """
        alive = self.reachable_from(roots)
        for node in range(len(self.vals)):
            if node not in alive:
                self.progs[node] = []
        return alive

    def topological_order(self, alive: Optional[Set[int]] = None) -> Optional[List[int]]:
        """Topological order of the node-reference graph, or ``None`` if cyclic.

        Used to choose between fast memoized DP (acyclic, the common case)
        and path-guarded walks (cyclic, possible in principle -- see
        DESIGN.md note 3).
        """
        nodes = alive if alive is not None else set(range(len(self.vals)))
        indegree: Dict[int, int] = {node: 0 for node in nodes}
        successors: Dict[int, List[int]] = {node: [] for node in nodes}
        for node in nodes:
            for referenced in self.reference_edges(node):
                if referenced in nodes:
                    # edge referenced -> node (node depends on referenced)
                    successors[referenced].append(node)
                    indegree[node] += 1
        ready = [node for node, degree in indegree.items() if degree == 0]
        order: List[int] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for successor in successors[node]:
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    ready.append(successor)
        if len(order) != len(nodes):
            return None
        return order

    def __repr__(self) -> str:
        return (
            f"NodeStore(nodes={len(self.vals)}, target={self.target}, "
            f"entries={sum(len(p) for p in self.progs)})"
        )


def emptiness_fixpoint(
    store: NodeStore, node_valid: Callable[[int, Set[int]], bool]
) -> Set[int]:
    """Dependency-driven least fixpoint of "node denotes an expression".

    ``node_valid(node, valid)`` must be monotone in ``valid`` (more valid
    dependencies can only make a node valid).  Instead of sweeping every
    node until nothing changes -- O(nodes) sweeps of O(nodes) checks in
    the worst case -- each node is rechecked only when one of the nodes
    its predicates reference (``reference_edges``) becomes valid, so total
    work is bounded by the number of dependency edges.

    Shared by ``Intersect_t`` and ``Intersect_u`` emptiness pruning; the
    naive sweeps remain available behind ``use_worklist_pruning=False``
    as the equivalence oracle.
    """
    valid: Set[int] = set()
    dependents: Dict[int, List[int]] = {}
    unresolved: List[int] = []
    for node in range(len(store.vals)):
        entries = store.progs[node]
        if any(isinstance(entry, VarEntry) for entry in entries):
            valid.add(node)
        elif entries:
            unresolved.append(node)
            for dependency in set(store.reference_edges(node)):
                dependents.setdefault(dependency, []).append(node)
    queue: deque = deque(valid)
    # Nodes needing no valid dependency (constant predicates, const-only
    # dag paths) seed the propagation alongside the variable nodes.
    for node in unresolved:
        if node not in valid and node_valid(node, valid):
            valid.add(node)
            queue.append(node)
    while queue:
        ready = queue.popleft()
        for node in dependents.get(ready, ()):
            if node not in valid and node_valid(node, valid):
                valid.add(node)
                queue.append(node)
    return valid
