#!/usr/bin/env python3
"""Paper Example 2: a pure lookup-language (Lt) task with a join.

Customer names map to sale prices through a join of CustData and Sale on
the (Addr, St) composite key.  This example runs in the restricted lookup
language to show the Lt layer standing alone, and demonstrates the
interaction model: after one example the surviving programs still
disagree on some inputs, the session highlights one, and the user's fix
converges the space.

Run:  python examples/customer_join.py
"""

from repro import Catalog, SynthesisSession, Table


def main() -> None:
    custdata = Table(
        "CustData",
        ["Name", "Addr", "St"],
        [
            ("Sean Riley", "432", "15th"),
            ("Peter Shaw", "24", "18th"),
            ("Mike Henry", "432", "18th"),
            ("Gary Lamb", "104", "12th"),
        ],
        keys=[("Name",), ("Addr", "St")],
    )
    sale = Table(
        "Sale",
        ["Addr", "St", "Date", "Price"],
        [
            ("24", "18th", "5/21", "110"),
            ("104", "12th", "5/23", "225"),
            ("432", "18th", "5/20", "2015"),
            ("432", "15th", "5/24", "495"),
        ],
        keys=[("Addr", "St")],
    )

    session = SynthesisSession(Catalog([custdata, sale]), language="lookup")
    session.add_example(("Peter Shaw",), "110")

    print("After 1 example the top program is:")
    print(" ", session.learn().source())

    remaining = [("Gary Lamb",), ("Mike Henry",), ("Sean Riley",)]
    flagged = session.highlight_ambiguous(remaining)
    if flagged:
        state, outputs = flagged[0]
        print(f"\nConsistent programs disagree on {state}: {outputs}")
        print("Giving the correct output as a second example...")
        session.add_example(state, "225" if state == ("Gary Lamb",) else outputs[0])

    program = session.learn()
    print("\nConverged program:")
    print(" ", program.source())
    print(" ", program.describe())
    print()
    for row in remaining:
        print(f"  {row[0]:12} -> {program(row)}")


if __name__ == "__main__":
    main()
