"""Unit tests for the Figure 11 metrics on Du."""

import pytest

from repro.semantic.language import SemanticLanguage
from repro.semantic.measure import count_expressions, dag_size, structure_size
from repro.tables import Catalog, Table


@pytest.fixture()
def comp_catalog():
    return Catalog(
        [
            Table(
                "Comp",
                ["Id", "Name"],
                [("c1", "Microsoft"), ("c2", "Google"), ("c4", "Facebook")],
                keys=[("Id",), ("Name",)],
            )
        ]
    )


class TestCount:
    def test_count_is_large(self, comp_catalog):
        # Figure 11(a): the number of consistent expressions is huge even
        # for small examples -- every substring decomposition, position
        # alternative and lookup derivation multiplies in.
        language = SemanticLanguage(comp_catalog)
        structure = language.generate(("c4",), "Facebook")
        assert language.count_expressions(structure) > 10**6

    def test_count_grows_with_output_length(self, comp_catalog):
        language = SemanticLanguage(comp_catalog)
        short = language.generate(("c4",), "Face")
        long = language.generate(("c4 c1",), "Facebook Microsoft")
        assert count_expressions(long) > count_expressions(short)

    def test_count_zero_budget_excludes_lookups(self, comp_catalog):
        language = SemanticLanguage(comp_catalog)
        structure = language.generate(("c4",), "Facebook")
        full = count_expressions(structure)
        structure.store.depth_limit = 0
        without_lookups = count_expressions(structure)
        assert without_lookups < full

    def test_count_deterministic(self, comp_catalog):
        language = SemanticLanguage(comp_catalog)
        structure = language.generate(("c4",), "Facebook")
        assert count_expressions(structure) == count_expressions(structure)


class TestSize:
    def test_size_polynomial_not_astronomical(self, comp_catalog):
        # Theorem 3(b): the structure is polynomial even though the count
        # is exponential; for this tiny example it stays in the thousands.
        language = SemanticLanguage(comp_catalog)
        structure = language.generate(("c4",), "Facebook")
        size = structure_size(structure)
        count = count_expressions(structure)
        assert size < 50_000
        assert count > size  # exponential vs polynomial

    def test_size_includes_top_dag(self, comp_catalog):
        language = SemanticLanguage(comp_catalog)
        structure = language.generate(("c4",), "Facebook")
        assert structure_size(structure) > dag_size(structure.dag) > 0

    def test_shared_predicate_dags_counted_once(self):
        # Two rows keyed by strings sharing the dag cache entry.
        table = Table(
            "T",
            ["K", "V", "W"],
            [("ab", "1", "x"), ("ab2", "2", "y")],
            keys=[("K",)],
        )
        language = SemanticLanguage(Catalog([table]))
        structure = language.generate(("ab",), "1")
        size_once = structure_size(structure)
        assert size_once > 0

    def test_size_shrinks_after_intersection(self, comp_catalog):
        # Figure 12(b): intersection mostly shrinks the structure.
        language = SemanticLanguage(comp_catalog)
        first = language.generate(("c4",), "Facebook")
        second = language.generate(("c2",), "Google")
        merged = language.intersect(first, second)
        assert merged is not None
        assert structure_size(merged) <= structure_size(first) ** 2  # far from quadratic
        assert structure_size(merged) < structure_size(first) * 4
