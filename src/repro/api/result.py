"""Structured synthesis inputs and outputs for the engine API.

A :class:`SynthesisTask` is one independent learning problem (its
examples); a :class:`SynthesisResult` is everything a caller needs to
serve the answer: ranked candidate programs with ranking provenance,
the Figure 11 version-space metrics, wall-clock timing and an ambiguity
flag -- so nothing has to be recomputed (or re-synthesized) downstream.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log10
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.formalism import Example

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.program import Program

#: How a candidate earned its score (the answer-provenance of the ranking).
PROVENANCE_BEST = "extract-best"  # the language's own best-path extraction
PROVENANCE_TOP_K = "top-k"  # the language's ranked top-k extraction
PROVENANCE_ENUMERATED = "enumerated"  # enumerated, scored by the shared cost model


def count_log10(value: int) -> float:
    """log10 of a (possibly astronomically large) expression count."""
    if value <= 0:
        return float("-inf")
    if value.bit_length() <= 900:
        return log10(value)
    return value.bit_length() * 0.30102999566398120


def as_task(task: "SynthesisTask | Sequence[Tuple[Sequence[str], str]]") -> "SynthesisTask":
    """Coerce raw ``(inputs, output)`` pairs into a :class:`SynthesisTask`."""
    if isinstance(task, SynthesisTask):
        return task
    return SynthesisTask(examples=tuple(task))


@dataclass(frozen=True)
class SynthesisTask:
    """One independent synthesis problem: its examples, optionally named."""

    examples: Tuple[Example, ...]
    name: Optional[str] = None

    def __post_init__(self) -> None:
        normalized = tuple(
            (tuple(inputs), output) for inputs, output in self.examples
        )
        object.__setattr__(self, "examples", normalized)

    @property
    def num_inputs(self) -> int:
        if not self.examples:
            return 0
        return len(self.examples[0][0])

    def signature(self) -> str:
        """A stable rendering of the normalized examples.

        Two tasks with the same examples (whatever sequence types the
        caller used; the task name is deliberately excluded) signature
        identically -- the service request cache keys on this together
        with the catalog fingerprint and config signature.
        """
        import json

        return json.dumps(
            [[list(inputs), output] for inputs, output in self.examples],
            ensure_ascii=False,
            separators=(",", ":"),
        )


@dataclass(frozen=True)
class RankedProgram:
    """One candidate with its rank, cost score and ranking provenance.

    ``score`` is the cost under :class:`repro.config.RankingWeights` --
    lower is better, rank 1 is the program :meth:`SynthesisResult.program`
    returns.

    ``confidence`` is the min matcher confidence over the program's
    lookups (``repro.matching``): 1.0 when every binding is exact -- the
    only value the default matcher spec produces -- and lower when some
    predicate was resolved canonically / fuzzily / by alias.  Exact
    candidates always rank strictly ahead of approximate ones.
    """

    rank: int
    score: float
    program: "Program"
    provenance: str = PROVENANCE_ENUMERATED
    confidence: float = 1.0

    @property
    def approximate(self) -> bool:
        """True when some lookup was bound by an approximate matcher."""
        return self.confidence < 1.0

    def __iter__(self):
        """Unpack as ``(score, program)`` for tuple-style consumers."""
        yield self.score
        yield self.program


@dataclass(frozen=True)
class SynthesisResult:
    """Everything :meth:`repro.api.Synthesizer.synthesize` learned.

    Attributes:
        task: the task that was solved.
        language: canonical backend name ("semantic", "lookup", "syntactic").
        programs: ranked candidates, best first (never empty).
        consistent_count: number of consistent expressions (Figure 11(a)).
        structure_size: version-space structure size (Figure 11(b)).
        elapsed_seconds: wall-clock time of the synthesize call.
        phase_seconds: wall-clock per phase -- ``"generate"`` (GenerateStr
            over every example), ``"intersect"`` (the smallest-first fold)
            and ``"rank"`` (candidate extraction plus the Figure 11
            metrics).  ``repro learn --profile`` prints it.
    """

    task: SynthesisTask
    language: str
    programs: Tuple[RankedProgram, ...]
    consistent_count: int
    structure_size: int
    elapsed_seconds: float
    phase_seconds: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------------
    @property
    def best(self) -> RankedProgram:
        """The rank-1 candidate."""
        return self.programs[0]

    @property
    def program(self) -> "Program":
        """The top-ranked program (what ``SynthesisSession.learn`` returned)."""
        return self.programs[0].program

    @property
    def ambiguous(self) -> bool:
        """More than one expression is still consistent with the examples.

        When true, §3.2's interaction model suggests showing the user a
        distinguishing input (see :meth:`ambiguous_rows`).
        """
        return self.consistent_count > 1

    # ------------------------------------------------------------------
    def fill(self, rows: Sequence[Sequence[str]]) -> List[Optional[str]]:
        """Run the top-ranked program over ``rows``."""
        return self.program.fill(rows)

    def ambiguous_rows(
        self, rows: Sequence[Sequence[str]]
    ) -> List[Tuple[Tuple[str, ...], List[str]]]:
        """Rows on which the ranked candidates disagree (§3.2's highlight).

        Returns the rows with at least two distinct defined outputs among
        ``self.programs``, together with those outputs.
        """
        flagged: List[Tuple[Tuple[str, ...], List[str]]] = []
        for row in rows:
            state = tuple(row)
            outputs: List[str] = []
            seen: Set[str] = set()
            for candidate in self.programs:
                value = candidate.program.run(state)
                if value is not None and value not in seen:
                    seen.add(value)
                    outputs.append(value)
            if len(outputs) >= 2:
                flagged.append((state, outputs))
        return flagged

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly summary: serialized candidates plus the metrics.

        ``consistent_count`` can exceed 10^1000 (Figure 11(a)); the exact
        integer is emitted only when it is JSON-number safe, with a log10
        rendition alongside for the astronomical cases.
        """
        exact = self.consistent_count
        return {
            "task": {"name": self.task.name, "examples": [
                [list(inputs), output] for inputs, output in self.task.examples
            ]},
            "language": self.language,
            "programs": [
                {
                    "rank": candidate.rank,
                    "score": candidate.score,
                    "provenance": candidate.provenance,
                    "program": candidate.program.to_dict(),
                    # Emitted only for approximate candidates so exact
                    # artifacts stay byte-identical to prior releases.
                    **(
                        {"confidence": candidate.confidence}
                        if candidate.confidence < 1.0
                        else {}
                    ),
                }
                for candidate in self.programs
            ],
            "consistent_count": exact if exact.bit_length() <= 53 else None,
            "consistent_count_log10": round(count_log10(exact), 3),
            "structure_size": self.structure_size,
            "elapsed_seconds": self.elapsed_seconds,
            "phase_seconds": self.phase_seconds,
            "ambiguous": self.ambiguous,
        }
