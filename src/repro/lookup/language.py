"""The Lt language bundle: synthesis + measures against a fixed catalog."""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.api.registry import register_backend
from repro.config import DEFAULT_CONFIG, SynthesisConfig
from repro.core.base import Expression, InputState
from repro.core.formalism import LanguageAdapter
from repro.lookup.dstruct import NodeStore
from repro.lookup.extract import best_expression, enumerate_expressions
from repro.lookup.generate import generate_lookup
from repro.lookup.intersect import intersect_lookup
from repro.lookup.measure import count_expressions, structure_size
from repro.tables.catalog import Catalog


@register_backend("lookup", "Lt")
class LookupLanguage:
    """GenerateStr/Intersect plus measures for the lookup language Lt."""

    name = "Lt"
    requires_catalog = True

    def __init__(
        self, catalog: Catalog, config: SynthesisConfig = DEFAULT_CONFIG
    ) -> None:
        self.catalog = catalog
        self.config = config

    # -- synthesis ------------------------------------------------------
    def generate(self, state: InputState, output: str) -> Optional[NodeStore]:
        store = generate_lookup(self.catalog, state, output, self.config)
        if store.target is None:
            return None
        return store

    def intersect(
        self, first: NodeStore, second: NodeStore
    ) -> Optional[NodeStore]:
        return intersect_lookup(first, second, self.config)

    def is_empty(self, store: NodeStore) -> bool:
        return store.target is None

    def adapter(self) -> LanguageAdapter[NodeStore]:
        return LanguageAdapter(
            name=self.name,
            generate=self.generate,
            intersect=self.intersect,
            is_empty=self.is_empty,
        )

    # -- measures ---------------------------------------------------------
    def count_expressions(self, store: NodeStore) -> int:
        """Number of concrete Lt expressions consistent with the examples."""
        return count_expressions(store)

    def structure_size(self, store: NodeStore) -> int:
        """Terminal-symbol size of Dt."""
        return structure_size(store)

    # -- ranking / inspection ----------------------------------------------
    def best_program(self, store: NodeStore) -> Optional[Expression]:
        """The top-ranked consistent expression (§4.4), or ``None``."""
        ranked = best_expression(store, self.config)
        if ranked is None:
            return None
        return ranked[1]

    def enumerate_programs(
        self, store: NodeStore, limit: int = 1000
    ) -> Iterator[Expression]:
        return enumerate_expressions(store, limit=limit)
