"""The synthesizer engine: pluggable backends, ranked results, batching.

:class:`Synthesizer` is the one-stop front end over the paper's machinery:

* construction resolves a language *backend* through the registry
  (:mod:`repro.api.registry`) instead of hard-coding the three languages,
* :meth:`Synthesizer.synthesize` runs §3.1's Synthesize over a task and
  returns a :class:`~repro.api.result.SynthesisResult` with ranked
  candidates, version-space metrics, timing and ambiguity flags,
* :meth:`Synthesizer.run_batch` fans many independent tasks out over a
  thread pool, preserving input order.

The interactive :class:`~repro.engine.session.SynthesisSession` remains
for example-at-a-time workflows; it now dispatches through the same
registry.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.api.registry import LanguageBackend, create_backend, resolve_backend_name
from repro.api.result import (
    PROVENANCE_BEST,
    PROVENANCE_ENUMERATED,
    PROVENANCE_TOP_K,
    RankedProgram,
    SynthesisResult,
    SynthesisTask,
    as_task,
)
from repro.config import DEFAULT_CONFIG, RankingWeights, SynthesisConfig
from repro.core.base import Expression
from repro.core.exprs import Var
from repro.core.formalism import _check_examples, synthesize_incremental
from repro.engine.program import Program
from repro.exceptions import NoExamplesError, NoProgramFoundError
from repro.lookup.ast import Select
from repro.lookup.extract import expression_tables
from repro.syntactic.ast import Concatenate, ConstStr, SubStr
from repro.syntactic.positions import position_expr_cost
from repro.tables.background import background_catalog
from repro.tables.catalog import Catalog

TaskLike = Union[SynthesisTask, Sequence[Tuple[Sequence[str], str]]]


# -- shared cost model over concrete expressions -----------------------------
def _select_cost(expr: Select, weights: RankingWeights) -> float:
    total = weights.select_base
    for _, sub in expr.predicates:
        if isinstance(sub, ConstStr):
            total += weights.const_predicate
            continue
        if isinstance(sub, (Var, Select)):
            cost = weights.node_predicate + _source_cost(sub, weights)
        else:  # dag-valued predicate: a full syntactic expression
            cost = score_expression(sub, weights)
        if expr.table in expression_tables(sub):
            cost += weights.self_join_penalty
        total += cost
    return total


def _source_cost(expr: Expression, weights: RankingWeights) -> float:
    """Cost of an ``e_t`` source (input variable or lookup expression)."""
    if isinstance(expr, Var):
        return weights.var_expr
    if isinstance(expr, Select):
        return _select_cost(expr, weights)
    return score_expression(expr, weights)


def _atom_cost(expr: Expression, weights: RankingWeights) -> float:
    if isinstance(expr, ConstStr):
        return weights.const_atom_base + weights.const_atom_per_char * len(expr.text)
    if isinstance(expr, SubStr):
        return (
            weights.substr_atom
            + _source_cost(expr.source, weights)
            + position_expr_cost(expr.p1, weights)
            + position_expr_cost(expr.p2, weights)
        )
    return weights.ref_atom + _source_cost(expr, weights)


def score_expression(
    expr: Expression, weights: RankingWeights = DEFAULT_CONFIG.weights
) -> float:
    """Cost of a concrete expression under the §4.4/§5.4 ranking weights.

    Mirrors the compositional model the extractors use (lower = better),
    so candidates obtained by enumeration can be ranked on the same scale
    as the languages' own best-path extraction.
    """
    if isinstance(expr, Concatenate):
        return sum(weights.edge_base + _atom_cost(part, weights) for part in expr.parts)
    return weights.edge_base + _atom_cost(expr, weights)


# -- the engine ---------------------------------------------------------------
class Synthesizer:
    """Learn string transformations against a fixed catalog and backend.

    Args:
        catalog: the user's spreadsheet tables (``None`` for purely
            syntactic work).
        language: a registered backend name or alias -- ``"semantic"``/
            ``"Lu"`` (default), ``"lookup"``/``"Lt"``, ``"syntactic"``/
            ``"Ls"``, or anything added via
            :func:`repro.api.registry.register_backend`.
        background: §6 background table names to merge (or ``"all"``).
        config: synthesis/ranking knobs.

    >>> engine = Synthesizer(catalog)                                # doctest: +SKIP
    >>> result = engine.synthesize([(("c4",), "Facebook")])          # doctest: +SKIP
    >>> result.program(("c2",)), result.ambiguous                    # doctest: +SKIP
    ('Google', True)
    """

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        language: str = "semantic",
        background: Union[None, str, Iterable[str]] = None,
        config: SynthesisConfig = DEFAULT_CONFIG,
    ) -> None:
        self.language = resolve_backend_name(language)
        merged = Catalog(catalog.tables() if catalog is not None else [])
        if background is not None:
            names = None if background == "all" else list(background)
            merged = merged.merged_with(background_catalog(names))
        merged.use_table_index = config.use_table_index
        self.catalog = merged
        self.config = config
        self._backend: LanguageBackend = create_backend(
            self.language, self.catalog, config
        )

    # ------------------------------------------------------------------
    @property
    def backend(self) -> LanguageBackend:
        """The resolved language backend (adapter + ranking + measures)."""
        return self._backend

    def _program_catalog(self) -> Optional[Catalog]:
        if getattr(self._backend, "requires_catalog", True):
            return self.catalog
        return None

    def _wrap(self, expr: Expression, num_inputs: int) -> Program:
        return Program(expr, self._program_catalog(), self.language, num_inputs)

    # ------------------------------------------------------------------
    def synthesize(self, task: TaskLike, k: int = 5) -> SynthesisResult:
        """Solve one task: ranked programs + metrics + timing.

        Args:
            task: a :class:`SynthesisTask` or raw ``(inputs, output)`` pairs.
            k: how many ranked candidates to return (at least 1).

        Raises:
            NoExamplesError: the task has no examples.
            NoProgramFoundError: no expression fits all examples.
            InconsistentExampleError: malformed examples (mixed arity...).
        """
        task = as_task(task)
        if not task.examples:
            raise NoExamplesError()
        _check_examples(task.examples)
        started = time.perf_counter()
        adapter = self._backend.adapter()
        structure = None
        for example in task.examples:
            structure = synthesize_incremental(adapter, structure, example)
        candidates = self._ranked_candidates(structure, task.num_inputs, max(1, k))
        if not candidates:
            raise NoProgramFoundError(
                f"{adapter.name}: the version space is empty"
            )
        elapsed = time.perf_counter() - started
        return SynthesisResult(
            task=task,
            language=self.language,
            programs=tuple(candidates),
            consistent_count=self._backend.count_expressions(structure),
            structure_size=self._backend.structure_size(structure),
            elapsed_seconds=elapsed,
        )

    def _ranked_candidates(
        self, structure, num_inputs: int, k: int
    ) -> List[RankedProgram]:
        """Best program first, then up to ``k - 1`` runners-up by cost."""
        weights = self.config.weights
        seen = set()
        ordered: List[Tuple[float, str, Expression, str]] = []

        def push(score: float, expr: Expression, provenance: str) -> None:
            key = str(expr)
            if key in seen:
                return
            seen.add(key)
            ordered.append((score, key, expr, provenance))

        best = self._backend.best_program(structure)
        if best is None:
            return []
        push(score_expression(best, weights), best, PROVENANCE_BEST)
        if hasattr(self._backend, "top_programs"):
            for score, expr in self._backend.top_programs(structure, k=k):
                push(score, expr, PROVENANCE_TOP_K)
        if len(ordered) < k:
            for expr in self._backend.enumerate_programs(structure, limit=k * 4):
                if len(ordered) >= k * 2:
                    break
                push(score_expression(expr, weights), expr, PROVENANCE_ENUMERATED)
        head, tail = ordered[0], sorted(ordered[1:], key=lambda item: item[:2])
        ranked = [head] + tail[: k - 1]
        return [
            RankedProgram(
                rank=rank,
                score=score,
                program=self._wrap(expr, num_inputs),
                provenance=provenance,
            )
            for rank, (score, _, expr, provenance) in enumerate(ranked, start=1)
        ]

    # ------------------------------------------------------------------
    def run_batch(
        self,
        tasks: Sequence[TaskLike],
        workers: Optional[int] = None,
        k: int = 5,
        return_errors: bool = False,
    ) -> List[Union[SynthesisResult, Exception]]:
        """Solve many independent tasks, preserving input order.

        Args:
            workers: thread-pool size; ``None`` or ``<= 1`` runs
                sequentially.  Threads share the backend, whose catalog and
                config are immutable, so results equal the sequential run.
            return_errors: when true, a failing task yields its exception
                in its slot instead of aborting the whole batch.
        """
        normalized = [as_task(task) for task in tasks]

        def solve(task: SynthesisTask) -> Union[SynthesisResult, Exception]:
            try:
                return self.synthesize(task, k=k)
            except Exception as error:  # noqa: BLE001 -- relayed to caller
                if return_errors:
                    return error
                raise

        if workers is None or workers <= 1:
            return [solve(task) for task in normalized]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(solve, normalized))
