"""The data structure Du for sets of Lu expressions (paper §5.2).

``Du`` couples the lookup node store (η̃, Progs) with Dags of syntactic
expressions in two places:

* the **top-level Dag** represents all concatenations producing the output
  string; its edges carry constants, whole-value node references and
  substrings of node values (``f̃_s := ConstStr(s) | ẽ_t | SubStr(ẽ_t, ...)``),
* every generalized **select predicate** carries a nested Dag
  (``p̃_t := C = ẽ_s``) over the same node ids.

Sharing is pervasive and deliberate (Theorem 3): node Progs are shared by
every dag edge that references the node, and predicate dags are shared
across rows keyed by the same string.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.lookup.dstruct import NodeStore
from repro.syntactic.dag import Dag


@dataclass
class SemanticStructure:
    """Du = (node store, top-level output dag)."""

    store: NodeStore
    dag: Dag

    @property
    def depth_limit(self) -> int:
        return self.store.depth_limit

    def has_program(self) -> bool:
        """Non-empty: the top dag has at least one source→target path."""
        return self.dag.has_path()

    def __repr__(self) -> str:
        return (
            f"SemanticStructure(nodes={len(self.store.vals)}, "
            f"dag_edges={len(self.dag.edges)})"
        )
