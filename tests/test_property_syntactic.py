"""Hypothesis property tests for the syntactic layer.

These pin the paper's Definition 1 invariants on randomized inputs:
generation is sound (every represented expression is consistent with the
example) and intersection is sound and complete (common behaviour
survives; everything surviving is consistent with both examples).
"""

from hypothesis import given, settings, strategies as st

from repro.syntactic.language import SyntacticLanguage
from repro.syntactic.positions import (
    count_position_exprs,
    enumerate_position_exprs,
    generalized_positions,
    intersect_position_sets,
)
from repro.syntactic.tokens import TOKENS, token_matches

# A compact alphabet exercising every token kind without exploding match
# tables: letters, digits, separators.
TEXT = st.text(
    alphabet="ab AB01-/.,:",
    min_size=1,
    max_size=12,
)


class TestTokenProperties:
    @given(TEXT)
    @settings(max_examples=60)
    def test_class_token_matches_are_maximal_and_disjoint(self, text):
        for token in TOKENS:
            if token.kind != "class":
                continue
            spans = token_matches(token, text)
            for i, (start, end) in enumerate(spans):
                assert start < end
                if i + 1 < len(spans):
                    # Disjoint and non-adjacent (maximality).
                    assert spans[i + 1][0] > end

    @given(TEXT)
    @settings(max_examples=60)
    def test_char_tokens_cover_exact_occurrences(self, text):
        for token in TOKENS:
            if token.kind != "char":
                continue
            spans = token_matches(token, text)
            assert len(spans) == text.count(token.pattern)


class TestPositionProperties:
    @given(TEXT, st.data())
    @settings(max_examples=80)
    def test_generated_positions_round_trip(self, text, data):
        position = data.draw(st.integers(min_value=0, max_value=len(text)))
        entries = generalized_positions(text, position)
        for expr in enumerate_position_exprs(entries):
            assert expr.position_in(text) == position

    @given(TEXT, st.data())
    @settings(max_examples=60)
    def test_count_matches_enumeration(self, text, data):
        position = data.draw(st.integers(min_value=0, max_value=len(text)))
        entries = generalized_positions(text, position)
        assert count_position_exprs(entries) == len(
            list(enumerate_position_exprs(entries))
        )

    @given(TEXT, TEXT, st.data())
    @settings(max_examples=60)
    def test_intersection_sound_on_both_strings(self, first, second, data):
        p1 = data.draw(st.integers(min_value=0, max_value=len(first)))
        p2 = data.draw(st.integers(min_value=0, max_value=len(second)))
        merged = intersect_position_sets(
            generalized_positions(first, p1), generalized_positions(second, p2)
        )
        if merged is None:
            return
        for expr in enumerate_position_exprs(merged):
            assert expr.position_in(first) == p1
            assert expr.position_in(second) == p2


class TestGenerateSoundness:
    @given(TEXT, st.data())
    @settings(max_examples=40, deadline=None)
    def test_every_program_consistent_with_example(self, text, data):
        # Output: a substring of the input (guaranteeing var-based programs)
        # possibly wrapped in constant junk.
        start = data.draw(st.integers(min_value=0, max_value=len(text) - 1))
        end = data.draw(st.integers(min_value=start + 1, max_value=len(text)))
        prefix = data.draw(st.sampled_from(["", "x:", "<<"]))
        output = prefix + text[start:end]
        language = SyntacticLanguage()
        dag = language.generate((text,), output)
        for program in language.enumerate_programs(dag, limit=60):
            assert program.evaluate((text,)) == output, str(program)

    @given(TEXT, st.data())
    @settings(max_examples=40, deadline=None)
    def test_best_program_consistent(self, text, data):
        start = data.draw(st.integers(min_value=0, max_value=len(text) - 1))
        end = data.draw(st.integers(min_value=start + 1, max_value=len(text)))
        output = text[start:end]
        language = SyntacticLanguage()
        dag = language.generate((text,), output)
        program = language.best_program(dag)
        assert program is not None
        assert program.evaluate((text,)) == output


class TestIntersectionSoundness:
    @given(TEXT, TEXT, st.data())
    @settings(max_examples=30, deadline=None)
    def test_intersection_consistent_with_both(self, first, second, data):
        # Build both outputs with the same "recipe": first k characters.
        k = data.draw(
            st.integers(min_value=1, max_value=min(len(first), len(second)))
        )
        examples = [((first,), first[:k]), ((second,), second[:k])]
        language = SyntacticLanguage()
        d1 = language.generate(*examples[0])
        d2 = language.generate(*examples[1])
        merged = language.intersect(d1, d2)
        assert merged is not None  # CPos-prefix programs always survive
        for program in language.enumerate_programs(merged, limit=40):
            for state, output in examples:
                assert program.evaluate(state) == output, str(program)

    @given(TEXT)
    @settings(max_examples=30, deadline=None)
    def test_self_intersection_preserves_behaviour(self, text):
        language = SyntacticLanguage()
        dag = language.generate((text,), text)
        merged = language.intersect(dag, dag)
        assert merged is not None
        # Counts may differ only through path renumbering, never behaviour.
        best = language.best_program(merged)
        assert best.evaluate((text,)) == text
