"""Public engine API: pluggable backends, ranked results, batch execution.

The front door for programmatic users::

    from repro.api import Synthesizer

    engine = Synthesizer(catalog, background=["Month"])
    result = engine.synthesize([(("6-3-2008",), "Jun 3rd, 2008")])
    result.program(("9-24-2007",))        # -> "Sep 24th, 2007"
    payload = result.program.to_dict()    # cache it; apply later with
                                          # Program.from_dict(payload, catalog)

Modules: :mod:`repro.api.registry` (the :class:`LanguageBackend` protocol
and :func:`register_backend`), :mod:`repro.api.engine` (the
:class:`Synthesizer`), :mod:`repro.api.result` (structured results),
:mod:`repro.api.serialize` (the program payload codec).
"""

from repro.api.engine import Synthesizer, score_expression
from repro.api.registry import (
    LanguageBackend,
    available_backends,
    backend_class,
    create_backend,
    register_backend,
    resolve_backend_name,
)
from repro.api.result import RankedProgram, SynthesisResult, SynthesisTask
from repro.api.serialize import expression_from_dict, expression_to_dict

__all__ = [
    "LanguageBackend",
    "RankedProgram",
    "SynthesisResult",
    "SynthesisTask",
    "Synthesizer",
    "available_backends",
    "backend_class",
    "create_backend",
    "expression_from_dict",
    "expression_to_dict",
    "register_backend",
    "resolve_backend_name",
    "score_expression",
]
