"""Indexed hot paths vs naive oracles: identical structures and outputs.

Every ``use_*`` flag of :class:`SynthesisConfig` switches a hot path
between a purpose-built index and the original naive scan.  The flags
must never change *what* is computed: these tests pin indexed and naive
paths to byte-identical version-space structures, lookups and synthesis
results -- on randomized inputs (hypothesis) and on every benchsuite
problem.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Synthesizer
from repro.benchsuite import all_benchmarks
from repro.config import DEFAULT_CONFIG
from repro.lookup.dstruct import GenSelect, VarEntry
from repro.lookup.generate import generate_lookup
from repro.lookup.intersect import (
    intersect_lookup,
    valid_nodes_fixpoint as lookup_fixpoint,
    valid_nodes_fixpoint_naive as lookup_fixpoint_naive,
)
from repro.semantic.generate import generate_semantic
from repro.semantic.intersect import (
    intersect_semantic,
    valid_nodes_fixpoint as semantic_fixpoint,
    valid_nodes_fixpoint_naive as semantic_fixpoint_naive,
)
from repro.syntactic.generate import generate_dag
from repro.tables.catalog import Catalog
from repro.tables.table import Table

INDEXED = DEFAULT_CONFIG
NAIVE = DEFAULT_CONFIG.without_indexes()


# -- structural keys (dags/conditions have no __eq__ across objects) --------
def dag_key(dag):
    if dag is None:
        return None
    return (
        dag.nodes,
        dag.source,
        dag.target,
        tuple(sorted((edge, tuple(atoms)) for edge, atoms in dag.edges.items())),
    )


def entry_key(entry):
    if isinstance(entry, VarEntry):
        return ("var", entry.index)
    assert isinstance(entry, GenSelect)
    return (
        "select",
        entry.column,
        entry.table,
        entry.cond.table,
        entry.cond.row,
        tuple(
            tuple(
                (p.column, p.constant, p.node, dag_key(p.dag))
                for p in predicates
            )
            for predicates in entry.cond.keys
        ),
    )


def store_key(store):
    return (
        tuple(store.vals),
        tuple(store.depths),
        store.target,
        tuple(tuple(entry_key(e) for e in progs) for progs in store.progs),
    )


def structure_key(structure):
    return (store_key(structure.store), dag_key(structure.dag))


# -- randomized inputs -------------------------------------------------------
ALPHABET = "ab1-"
cells = st.text(alphabet=ALPHABET, min_size=0, max_size=6)


@st.composite
def catalogs(draw):
    """1-2 small tables with a guaranteed unique Id key column."""
    tables = []
    for t in range(draw(st.integers(min_value=1, max_value=2))):
        n_rows = draw(st.integers(min_value=1, max_value=5))
        rows = [
            (f"k{t}{r}", draw(cells), draw(cells))
            for r in range(n_rows)
        ]
        tables.append(Table(f"T{t}", ["Id", "A", "B"], rows, keys=[("Id",)]))
    return Catalog(tables)


@st.composite
def tasks(draw):
    catalog = draw(catalogs())
    table = catalog.tables()[0]
    # Bias inputs toward strings overlapping real cells so reachability
    # actually fires; outputs toward reachable cells.
    row = table.rows[draw(st.integers(min_value=0, max_value=table.num_rows - 1))]
    state = (draw(cells) + row[0] + draw(cells),)
    output = row[draw(st.integers(min_value=0, max_value=2))] or "x"
    return catalog, state, output


class TestGenerateSemanticEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(task=tasks())
    def test_identical_structures(self, task):
        catalog, state, output = task
        indexed = generate_semantic(catalog, state, output, INDEXED)
        naive = generate_semantic(catalog, state, output, NAIVE)
        assert structure_key(indexed) == structure_key(naive)

    @settings(max_examples=30, deadline=None)
    @given(task=tasks())
    def test_identical_structures_equality_trigger(self, task):
        from dataclasses import replace

        catalog, state, output = task
        indexed = generate_semantic(
            catalog, state, output, replace(INDEXED, relaxed_reachability=False)
        )
        naive = generate_semantic(
            catalog, state, output, replace(NAIVE, relaxed_reachability=False)
        )
        assert structure_key(indexed) == structure_key(naive)


class TestGenerateLookupEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(task=tasks())
    def test_identical_stores(self, task):
        catalog, state, output = task
        # generate_lookup has no indexed/naive split of its own, but it
        # consumes the catalog's cached occurrence tuples; pin it anyway.
        indexed = generate_lookup(catalog, state, output, INDEXED)
        naive = generate_lookup(catalog, state, output, NAIVE)
        assert store_key(indexed) == store_key(naive)


class TestGenerateDagEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(
        sources=st.lists(
            st.text(alphabet=ALPHABET, max_size=8), min_size=0, max_size=4
        ),
        output=st.text(alphabet=ALPHABET, min_size=0, max_size=8),
    )
    def test_identical_dags(self, sources, output):
        numbered = list(enumerate(sources))
        indexed = generate_dag(numbered, output, INDEXED)
        naive = generate_dag(numbered, output, NAIVE)
        assert dag_key(indexed) == dag_key(naive)
        # Atom order inside each edge must match too (dag_key sorts edges
        # but keeps each option list in emission order).
        assert list(indexed.edges.keys()) == list(naive.edges.keys())

    def test_ref_atom_ablation_respected(self):
        from dataclasses import replace

        numbered = [(0, "ab")]
        indexed = generate_dag(numbered, "ab", replace(INDEXED, include_ref_atoms=False))
        naive = generate_dag(numbered, "ab", replace(NAIVE, include_ref_atoms=False))
        assert dag_key(indexed) == dag_key(naive)


class TestTableIndexEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(
        cell_rows=st.lists(
            st.tuples(cells, cells, cells), min_size=1, max_size=12
        ),
        query=st.tuples(cells, cells),
        data=st.data(),
    )
    def test_find_rows_and_lookup_match_naive(self, cell_rows, query, data):
        rows = [(f"id{i}",) + row for i, row in enumerate(cell_rows)]
        table = Table("T", ["Id", "A", "B", "C"], rows, keys=[("Id",)])
        # Mix real cell values into the query half the time.
        conditions = {"A": query[0], "B": query[1]}
        if data.draw(st.booleans()):
            row = rows[data.draw(st.integers(0, len(rows) - 1))]
            conditions = {"A": row[1], "B": row[2]}
        assert table.find_rows(conditions) == table.find_rows_naive(conditions)
        assert table.lookup("C", conditions) == table.lookup(
            "C", conditions, use_index=False
        )

    def test_empty_conditions_match(self):
        table = Table("T", ["A"], [("x",), ("y",)], keys=[("A",)])
        assert table.find_rows({}) == table.find_rows_naive({})

    def test_single_key_lookup_uses_posting(self):
        table = Table("T", ["Id", "V"], [("a", "1"), ("b", "2")], keys=[("Id",)])
        assert table.value_rows("Id", "b") == (1,)
        assert table.value_rows("Id", "zz") == ()
        assert table.lookup("V", {"Id": "b"}) == "2"

    def test_unknown_column_raises_like_naive(self):
        from repro.exceptions import UnknownColumnError

        table = Table("T", ["Id", "V"], [("a", "1"), ("b", "2")], keys=[("Id",)])
        # Even when another condition's posting is empty (which would
        # short-circuit to []), the unknown column must raise, matching
        # the naive scan's contract.
        for conditions in (
            {"Id": "missing-value", "Nope": "x"},
            {"Nope": "x", "Id": "missing-value"},
        ):
            with pytest.raises(UnknownColumnError):
                table.find_rows(conditions)
            with pytest.raises(UnknownColumnError):
                table.find_rows_naive(conditions)


class TestUseTableIndexWiring:
    """SynthesisConfig.use_table_index reaches Select evaluation."""

    def _catalog(self):
        return Catalog(
            [Table("T", ["Id", "V"], [("a", "1"), ("b", "2")], keys=[("Id",)])]
        )

    def test_synthesizer_stamps_catalog(self):
        assert Synthesizer(self._catalog()).catalog.use_table_index is True
        naive = Synthesizer(self._catalog(), config=NAIVE)
        assert naive.catalog.use_table_index is False

    def test_session_stamps_catalog(self):
        from repro.engine.session import SynthesisSession

        session = SynthesisSession(self._catalog(), config=NAIVE)
        assert session.catalog.use_table_index is False

    def test_select_evaluation_honors_flag(self, monkeypatch):
        from repro.core.exprs import Var
        from repro.lookup.ast import Select

        seen = []
        original = Table.find_rows

        def spy(self, conditions, use_index=True):
            seen.append(use_index)
            return original(self, conditions, use_index=use_index)

        monkeypatch.setattr(Table, "find_rows", spy)
        select = Select("V", "T", [("Id", Var(0))])
        for flag in (True, False):
            catalog = self._catalog()
            catalog.use_table_index = flag
            assert select.evaluate(("b",), catalog) == "2"
            assert seen[-1] is flag


class TestFixpointEquivalence:
    def _stores(self, task):
        catalog, state, output = task
        first = generate_semantic(catalog, state, output, INDEXED)
        second = generate_semantic(catalog, (state[0] + "-",), output, INDEXED)
        return first, second

    @settings(max_examples=30, deadline=None)
    @given(task=tasks())
    def test_semantic_worklist_matches_sweeps(self, task):
        first, second = self._stores(task)
        merged = intersect_semantic(first, second, INDEXED)
        if merged is None:
            return
        store = merged.store
        assert semantic_fixpoint(store) == semantic_fixpoint_naive(store)

    @settings(max_examples=30, deadline=None)
    @given(task=tasks())
    def test_lookup_worklist_matches_sweeps(self, task):
        catalog, state, output = task
        first = generate_lookup(catalog, state, output, INDEXED)
        second = generate_lookup(catalog, (state[0] + "-",), output, INDEXED)
        if first.target is None or second.target is None:
            return
        merged = intersect_lookup(first, second, INDEXED)
        if merged is None:
            return
        assert lookup_fixpoint(merged) == lookup_fixpoint_naive(merged)

    @settings(max_examples=30, deadline=None)
    @given(task=tasks())
    def test_intersection_identical_under_both_pruners(self, task):
        # Isolate the worklist flag: hold the product strategy constant
        # (lazy vs naive allocates different product-node slots, covered
        # semantically in test_lazy_intersection_equivalence.py).
        from dataclasses import replace

        sweeps = replace(INDEXED, use_worklist_pruning=False)
        first_i, second_i = self._stores(task)
        first_n, second_n = self._stores(task)
        merged_indexed = intersect_semantic(first_i, second_i, INDEXED)
        merged_naive = intersect_semantic(first_n, second_n, sweeps)
        if merged_indexed is None or merged_naive is None:
            assert merged_indexed is None and merged_naive is None
            return
        assert structure_key(merged_indexed) == structure_key(merged_naive)


@pytest.mark.parametrize(
    "bench", all_benchmarks(), ids=lambda bench: bench.name
)
def test_benchsuite_problem_equivalence(bench):
    """Indexed and naive synthesis agree on every benchsuite problem."""
    catalog = bench.catalog()
    examples = list(bench.rows[:2])
    indexed = Synthesizer(catalog, config=INDEXED).synthesize(examples, k=3)
    naive = Synthesizer(catalog, config=NAIVE).synthesize(examples, k=3)
    assert str(indexed.program) == str(naive.program)
    assert indexed.consistent_count == naive.consistent_count
    assert indexed.structure_size == naive.structure_size
    assert [(c.rank, c.score, str(c.program)) for c in indexed.programs] == [
        (c.rank, c.score, str(c.program)) for c in naive.programs
    ]
