"""Ranking-based extraction and enumeration for Dt (paper §4.4).

The paper defines a partial order; we realize it as a compositional cost
model (see :class:`repro.config.RankingWeights`) and extract the cheapest
concrete expression by dynamic programming over (node, depth budget) --
the same k-bounded denotation used by :mod:`measure`, so extraction always
terminates even on self-referential stores.

Per §4.4 the extractor prefers: smaller depth (every Select adds
``select_base`` and deeper budgets are only used when they pay), predicates
comparing against nodes/variables over constants (``const_predicate`` ≫
``node_predicate``), and distinct tables for joins (``self_join_penalty``
when a predicate's chosen sub-expression already uses the parent's table).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.config import DEFAULT_CONFIG, SynthesisConfig
from repro.core.base import Expression
from repro.core.exprs import Var
from repro.lookup.ast import Select
from repro.lookup.dstruct import GenPredicate, GenSelect, NodeStore, VarEntry
from repro.syntactic.ast import ConstStr

Ranked = Tuple[float, Expression]
#: ``dag_extractor(dag, node_best)`` ranks a dag-valued predicate, where
#: ``node_best(node)`` gives the referenced node's best at reduced budget.
DagExtractor = Callable[[object, Callable[[int], Optional[Ranked]]], Optional[Ranked]]


def expression_tables(expr: Expression) -> Set[str]:
    """Tables used anywhere inside ``expr`` (for the self-join penalty)."""
    if isinstance(expr, Select):
        tables: Set[str] = {expr.table}
        for _, sub in expr.predicates:
            tables |= expression_tables(sub)
        return tables
    parts = getattr(expr, "parts", None)
    if parts is not None:
        tables = set()
        for part in parts:
            tables |= expression_tables(part)
        return tables
    source = getattr(expr, "source", None)
    if source is not None:
        return expression_tables(source)
    return set()


def expression_columns(expr: Expression) -> Set[Tuple[str, str]]:
    """``(table, column)`` pairs ``expr`` reads: Select outputs and keys.

    The serving layer validates these against the catalog before running
    a stored program, so a table that *exists* but lost a referenced
    column is refused up front instead of failing mid-evaluation.
    """
    if isinstance(expr, Select):
        columns: Set[Tuple[str, str]] = {(expr.table, expr.column)}
        for key_column, sub in expr.predicates:
            columns.add((expr.table, key_column))
            columns |= expression_columns(sub)
        return columns
    parts = getattr(expr, "parts", None)
    if parts is not None:
        columns = set()
        for part in parts:
            columns |= expression_columns(part)
        return columns
    source = getattr(expr, "source", None)
    if source is not None:
        return expression_columns(source)
    return set()


def expression_confidence(expr: Expression) -> float:
    """Min matcher confidence over every Select inside ``expr``.

    1.0 when every lookup is exact (always true under the default matcher
    spec); lower when some predicate was bound approximately -- the value
    surfaced as ``RankedProgram.confidence``.
    """
    if isinstance(expr, Select):
        return expr.match_confidence()
    confidence = 1.0
    parts = getattr(expr, "parts", None)
    if parts is not None:
        for part in parts:
            confidence = min(confidence, expression_confidence(part))
        return confidence
    source = getattr(expr, "source", None)
    if source is not None:
        return expression_confidence(source)
    return confidence


class Extractor:
    """Budget-bounded best-expression DP over a node store."""

    def __init__(
        self,
        store: NodeStore,
        config: SynthesisConfig = DEFAULT_CONFIG,
        dag_extractor: Optional[DagExtractor] = None,
    ) -> None:
        self.store = store
        self.config = config
        self.dag_extractor = dag_extractor
        self._memo: Dict[Tuple[int, int], Optional[Ranked]] = {}

    # ------------------------------------------------------------------
    def best_node(self, node: int, budget: Optional[int] = None) -> Optional[Ranked]:
        if budget is None:
            budget = self.store.depth_limit
        key = (node, budget)
        if key in self._memo:
            return self._memo[key]
        # Break self-recursion pessimistically during computation: a cyclic
        # reference at the same budget cannot improve a positive-cost min.
        self._memo[key] = None
        champion: Optional[Ranked] = None
        weights = self.config.weights
        for entry in self.store.progs[node]:
            if isinstance(entry, VarEntry):
                candidate: Optional[Ranked] = (weights.var_expr, Var(entry.index))
            elif budget > 0:
                candidate = self._rank_select(entry, budget)
            else:
                candidate = None
            if candidate is None:
                continue
            if champion is None or (candidate[0], str(candidate[1])) < (
                champion[0],
                str(champion[1]),
            ):
                champion = candidate
        self._memo[key] = champion
        return champion

    def _rank_select(self, entry: GenSelect, budget: int) -> Optional[Ranked]:
        weights = self.config.weights
        champion: Optional[Ranked] = None
        for predicates in entry.cond.keys:
            total = weights.select_base
            pairs: List[Tuple[str, Expression]] = []
            provenance: List[Tuple[str, str, float]] = []
            feasible = True
            for predicate in predicates:
                choice = self._rank_predicate(predicate, entry.table, budget)
                if choice is None:
                    feasible = False
                    break
                cost, expr, approx = choice
                total += cost
                pairs.append((predicate.column, expr))
                if approx is not None:
                    provenance.append((predicate.column, approx[0], approx[1]))
            if not feasible:
                continue
            candidate = (
                total,
                Select(
                    entry.column,
                    entry.table,
                    pairs,
                    match_provenance=provenance or None,
                ),
            )
            if champion is None or (candidate[0], str(candidate[1])) < (
                champion[0],
                str(champion[1]),
            ):
                champion = candidate
        return champion

    def _rank_predicate(
        self, predicate: GenPredicate, parent_table: str, budget: int
    ) -> Optional[Tuple[float, Expression, Optional[Tuple[str, float]]]]:
        """Best right-hand side for one predicate.

        Returns ``(cost, expression, approx)`` where ``approx`` is the
        ``(strategy, confidence)`` matcher provenance when the chosen
        option is an approximately-bound node, else ``None``.
        """
        weights = self.config.weights
        champion: Optional[Tuple[float, Expression, Optional[Tuple[str, float]]]] = None
        if predicate.dag is not None:
            if self.dag_extractor is None:
                raise ValueError("dag-valued predicate needs a dag_extractor")
            ranked = self.dag_extractor(
                predicate.dag, lambda node: self.best_node(node, budget - 1)
            )
            if ranked is None:
                return None
            cost, expr = ranked
            if parent_table in expression_tables(expr):
                cost += weights.self_join_penalty
            return (cost, expr, None)
        if predicate.node is not None:
            ranked = self.best_node(predicate.node, budget - 1)
            if ranked is not None:
                cost = weights.node_predicate + ranked[0]
                if parent_table in expression_tables(ranked[1]):
                    cost += weights.self_join_penalty
                approx: Optional[Tuple[str, float]] = None
                if predicate.node_confidence < 1.0:
                    # Approximately-bound nodes pay for their uncertainty,
                    # so exact programs always rank strictly first.
                    cost += weights.approx_predicate * (1.0 - predicate.node_confidence)
                    approx = (predicate.node_strategy, predicate.node_confidence)
                champion = (cost, ranked[1], approx)
        if predicate.constant is not None:
            if champion is None or weights.const_predicate < champion[0]:
                champion = (weights.const_predicate, ConstStr(predicate.constant), None)
        return champion


def best_expressions(
    store: NodeStore,
    config: SynthesisConfig = DEFAULT_CONFIG,
    dag_extractor: Optional[DagExtractor] = None,
) -> Dict[int, Ranked]:
    """Cheapest concrete expression per node (nodes with none are absent)."""
    extractor = Extractor(store, config, dag_extractor)
    result: Dict[int, Ranked] = {}
    for node in range(len(store.vals)):
        ranked = extractor.best_node(node)
        if ranked is not None:
            result[node] = ranked
    return result


def best_expression(
    store: NodeStore,
    config: SynthesisConfig = DEFAULT_CONFIG,
    dag_extractor: Optional[DagExtractor] = None,
) -> Optional[Ranked]:
    """The top-ranked expression for the store's target node."""
    if store.target is None:
        return None
    return Extractor(store, config, dag_extractor).best_node(store.target)


def enumerate_expressions(
    store: NodeStore,
    node: Optional[int] = None,
    limit: int = 1000,
) -> Iterator[Expression]:
    """Yield concrete Lt expressions for ``node`` (default target).

    Walks the same depth-bounded denotation as ``count_expressions``:
    when the total number of expressions is at most ``limit`` (at every
    node), the yielded list is exhaustive and its length equals the count.
    Sub-expression lists are memoized per (node, depth) and individually
    capped at ``limit``.
    """
    root = store.target if node is None else node
    if root is None:
        return
    memo: Dict[Tuple[int, int], List[Expression]] = {}

    def exprs_for(current: int, depth: int) -> List[Expression]:
        key = (current, depth)
        cached = memo.get(key)
        if cached is not None:
            return cached
        memo[key] = []  # break self-reference at equal depth defensively
        out: List[Expression] = []
        for entry in store.progs[current]:
            if len(out) >= limit:
                break
            if isinstance(entry, VarEntry):
                out.append(Var(entry.index))
                continue
            if depth <= 0:
                continue
            for predicates in entry.cond.keys:
                # Options carry their matcher provenance: the node option
                # of an approximately-bound predicate yields the same
                # Select (same provenance tag, same string key) as the
                # extractor's, so cross-source dedup works and enumerated
                # candidates report the right confidence.
                option_lists: List[List[Tuple[Expression, Optional[Tuple[str, float]]]]] = []
                feasible = True
                for predicate in predicates:
                    options: List[Tuple[Expression, Optional[Tuple[str, float]]]] = []
                    if predicate.constant is not None:
                        options.append((ConstStr(predicate.constant), None))
                    if predicate.node is not None:
                        approx = (
                            (predicate.node_strategy, predicate.node_confidence)
                            if predicate.node_confidence < 1.0
                            else None
                        )
                        options.extend(
                            (expr, approx)
                            for expr in exprs_for(predicate.node, depth - 1)
                        )
                    if not options:
                        feasible = False
                        break
                    option_lists.append(options)
                if not feasible:
                    continue
                columns = [p.column for p in predicates]
                for combo in _cartesian(option_lists):
                    provenance = [
                        (column, approx[0], approx[1])
                        for column, (_expr, approx) in zip(columns, combo)
                        if approx is not None
                    ]
                    out.append(
                        Select(
                            entry.column,
                            entry.table,
                            list(zip(columns, (expr for expr, _approx in combo))),
                            match_provenance=provenance or None,
                        )
                    )
                    if len(out) >= limit:
                        break
                if len(out) >= limit:
                    break
        memo[key] = out
        return out

    def _cartesian(option_lists: List[List[Expression]]) -> Iterator[tuple]:
        if not option_lists:
            yield ()
            return
        head, *tail = option_lists
        for option in head:
            for rest in _cartesian(tail):
                yield (option,) + rest

    yield from exprs_for(root, store.depth_limit)
