"""Multi-catalog HTTP surface: registry endpoints, staleness, typed errors.

Runs a real ``ThreadingHTTPServer`` on an ephemeral port and exercises
the PR-5 surface end to end: PUT/GET ``/catalogs``, CSV and JSON table
uploads, copy-on-write row appends, the ``catalog`` field on
``/learn``/``/fill``, artifact catalog provenance with re-resolve vs
409-staleness, and the structured 4xx bodies for duplicate tables,
duplicate CSV headers, unknown catalogs, empty catalogs and missing
tables/columns.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import (
    CatalogRegistry,
    ProgramStore,
    SynthesisService,
    create_server,
)
from repro.tables.catalog import Catalog
from repro.tables.table import Table

ROWS = [
    ("c1", "Microsoft"),
    ("c2", "Google"),
    ("c3", "Apple"),
    ("c4", "Facebook"),
    ("c5", "IBM"),
    ("c6", "Xerox"),
]
EXAMPLES = [[["c4 c3 c1"], "Facebook Apple Microsoft"]]


def comp_table():
    return Table("Comp", ["Id", "Name"], ROWS, keys=[("Id",)])


class Client:
    def __init__(self, base):
        self.base = base

    def request(self, method, path, payload=None, raw=None, content_type=None):
        data = raw
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if content_type is not None:
            headers["Content-Type"] = content_type
        request = urllib.request.Request(
            self.base + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=60) as reply:
                return reply.status, json.loads(reply.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read().decode("utf-8"))

    def get(self, path):
        return self.request("GET", path)

    def post(self, path, payload=None, **kwargs):
        return self.request("POST", path, payload, **kwargs)

    def put(self, path, payload):
        return self.request("PUT", path, payload)


@pytest.fixture()
def client(tmp_path):
    registry = CatalogRegistry()
    registry.register("products", Catalog([comp_table()]))
    service = SynthesisService(
        registry=registry,
        default_catalog="products",
        store=ProgramStore(tmp_path / "store"),
    )
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield Client(f"http://{host}:{port}")
    finally:
        server.shutdown()
        server.server_close()


class TestCatalogEndpoints:
    def test_put_get_list_roundtrip(self, client):
        status, created = client.put(
            "/catalogs/geo",
            {
                "tables": [
                    {
                        "name": "Caps",
                        "columns": ["Country", "Capital"],
                        "rows": [["France", "Paris"], ["Japan", "Tokyo"]],
                        "keys": [["Country"]],
                    }
                ]
            },
        )
        assert status == 200 and created["created"] is True
        status, detail = client.get("/catalogs/geo")
        assert status == 200
        assert detail["tables"][0]["columns"] == ["Country", "Capital"]
        assert detail["tables"][0]["keys"] == [["Country"]]
        status, listing = client.get("/catalogs")
        assert status == 200
        names = {entry["name"] for entry in listing["catalogs"]}
        assert {"geo", "products"} <= names
        status, health = client.get("/healthz")
        assert "geo" in health["catalogs"]
        assert health["default_catalog"] == "products"

    def test_put_replaces_and_reports_not_created(self, client):
        client.put(
            "/catalogs/geo",
            {"tables": [{"name": "A", "columns": ["x"], "rows": [["1"]]}]},
        )
        status, replaced = client.put(
            "/catalogs/geo",
            {"tables": [{"name": "B", "columns": ["y"], "rows": [["2"]]}]},
        )
        assert status == 200 and replaced["created"] is False
        _, detail = client.get("/catalogs/geo")
        assert [table["name"] for table in detail["tables"]] == ["B"]

    def test_post_table_json_and_csv(self, client):
        status, reply = client.post(
            "/catalogs/geo/tables",
            {"name": "Caps", "csv": "Country,Capital\nFrance,Paris\n"},
        )
        assert status == 200 and reply["added"] == "Caps"
        status, reply = client.post(
            "/catalogs/geo/tables?name=Codes",
            raw=b"Code,City\nSEA,Seattle\n",
            content_type="text/csv",
        )
        assert status == 200 and reply["added"] == "Codes"
        _, detail = client.get("/catalogs/geo")
        assert [table["name"] for table in detail["tables"]] == ["Caps", "Codes"]

    def test_post_rows_appends_copy_on_write(self, client):
        _, before = client.get("/catalogs/products")
        status, after = client.post(
            "/catalogs/products/rows",
            {"table": "Comp", "rows": [["c7", "Intel"]]},
        )
        assert status == 200
        assert after["appended"] == {"table": "Comp", "rows": 1}
        assert after["fingerprint"] != before["fingerprint"]
        assert after["tables"][0]["num_rows"] == len(ROWS) + 1

    def test_csv_upload_without_name_is_400(self, client):
        status, reply = client.post(
            "/catalogs/geo/tables",
            raw=b"a,b\n1,2\n",
            content_type="text/csv",
        )
        assert status == 400
        assert "query" in reply["error"]


class TestLearnFillWithCatalogs:
    def test_learn_names_its_snapshot(self, client):
        status, reply = client.post(
            "/learn", {"examples": EXAMPLES, "catalog": "products"}
        )
        assert status == 200
        assert reply["catalog"]["name"] == "products"
        assert reply["cache"] == "miss"
        _, detail = client.get("/catalogs/products")
        assert reply["catalog"]["fingerprint"] == detail["fingerprint"]

    def test_learn_fill_against_uploaded_catalog(self, client):
        client.put(
            "/catalogs/geo",
            {
                "tables": [
                    {
                        "name": "Caps",
                        "csv": "Country,Capital\nFrance,Paris\nJapan,Tokyo\n",
                    }
                ]
            },
        )
        status, learned = client.post(
            "/learn", {"examples": [[["France"], "Paris"]], "catalog": "geo"}
        )
        assert status == 200
        status, filled = client.post(
            "/fill",
            {
                "program": learned["programs"][0]["program"],
                "rows": [["Japan"]],
                "catalog": "geo",
            },
        )
        assert status == 200 and filled["outputs"] == ["Tokyo"]

    def test_append_invalidates_cache_and_serves_new_snapshot(self, client):
        _, first = client.post("/learn", {"examples": EXAMPLES})
        client.post(
            "/catalogs/products/rows",
            {"table": "Comp", "rows": [["c7", "Intel"]]},
        )
        _, second = client.post("/learn", {"examples": EXAMPLES})
        assert second["cache"] == "miss"  # new fingerprint, new cache key
        assert second["catalog"]["fingerprint"] != first["catalog"]["fingerprint"]
        status, filled = client.post(
            "/fill",
            {
                "program": second["programs"][0]["program"],
                "rows": [["c7 c2"]],
            },
        )
        # The appended row is visible: served from the new snapshot.
        assert status == 200
        assert filled["outputs"][0].startswith("Intel")

    def test_identical_content_shares_cache_across_names(self, client):
        client.put(
            "/catalogs/mirror",
            {
                "tables": [
                    {
                        "name": "Comp",
                        "columns": ["Id", "Name"],
                        "rows": [list(row) for row in ROWS],
                        "keys": [["Id"]],
                    }
                ]
            },
        )
        _, first = client.post(
            "/learn", {"examples": EXAMPLES, "catalog": "products"}
        )
        _, second = client.post(
            "/learn", {"examples": EXAMPLES, "catalog": "mirror"}
        )
        # Equal content -> equal fingerprint -> equal cache key: sound
        # because results depend only on catalog content.
        assert first["catalog"]["fingerprint"] == second["catalog"]["fingerprint"]
        assert second["cache"] == "hit"


class TestProvenanceAndStaleness:
    def save_expand(self, client):
        status, reply = client.post(
            "/learn",
            {"examples": EXAMPLES, "save": "expand", "catalog": "products"},
        )
        assert status == 200 and reply["saved"]["version"] == 1
        return reply

    def test_artifact_records_catalog_provenance(self, client):
        learned = self.save_expand(client)
        status, listing = client.get("/programs")
        assert status == 200
        entry = listing["programs"][0]
        assert entry["catalog"]["name"] == "products"
        assert entry["catalog"]["fingerprint"] == learned["catalog"]["fingerprint"]

    def test_fill_re_resolves_after_benign_append(self, client):
        self.save_expand(client)
        client.post(
            "/catalogs/products/rows",
            {"table": "Comp", "rows": [["c7", "Intel"]]},
        )
        status, filled = client.post(
            "/fill", {"program": "expand", "rows": [["c7 c1"]]}
        )
        assert status == 200
        assert filled["outputs"][0].startswith("Intel")

    def wait_revalidated(self, client):
        """Poll /stats until the revalidator drained its queue."""
        import time

        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            status, stats = client.get("/stats")
            assert status == 200
            reval = stats["revalidation"]
            if reval["queued"] == 0 and reval["processed"] == reval["events"]:
                return stats
            time.sleep(0.05)
        raise AssertionError("revalidation never drained")

    def test_fill_refuses_rewritten_catalog_with_409(self, client):
        # Two conflicting examples: once the rows are gone, nothing --
        # not even a relearn from the persisted examples -- can heal the
        # artifact, so the 409 is deterministic and carries the diff.
        status, reply = client.post(
            "/learn",
            {
                "examples": [[["c4"], "Facebook"], [["c2"], "Google"]],
                "save": "expand",
                "catalog": "products",
            },
        )
        assert status == 200, reply
        client.put(
            "/catalogs/products",
            {
                "tables": [
                    {
                        "name": "Comp",
                        "columns": ["Id", "Name"],
                        "rows": [["c1", "Renamed"]],
                        "keys": [["Id"]],
                    }
                ]
            },
        )
        stats = self.wait_revalidated(client)
        assert stats["revalidation"]["stale"] >= 1
        status, reply = client.post(
            "/fill", {"program": "expand", "rows": [["c1"]]}
        )
        assert status == 409
        assert reply["program"] == "expand"
        assert reply["catalog"] == "products"
        assert any("lost rows" in change for change in reply["changes"])
        # The listing explains the coming 409 instead of springing it.
        status, listing = client.get("/programs")
        entry = next(p for p in listing["programs"] if p["name"] == "expand")
        assert entry["stale"] is not None
        assert any("lost rows" in c for c in entry["stale"]["changes"])

    def test_schema_change_relearns_from_stored_examples(self, client):
        """Renamed columns over intact data: the revalidator re-learns
        the program from its persisted examples and the same
        ``name@version`` ref keeps serving -- no 409."""
        self.save_expand(client)
        client.put(
            "/catalogs/products",
            {
                "tables": [
                    {
                        "name": "Comp",
                        "columns": ["Ident", "Title"],
                        "rows": [[identifier, name] for identifier, name in ROWS],
                        "keys": [["Ident"]],
                    }
                ]
            },
        )
        stats = self.wait_revalidated(client)
        assert stats["revalidation"]["relearned"] >= 1
        status, filled = client.post(
            "/fill", {"program": "expand", "rows": [["c2 c5 c6"]]}
        )
        assert status == 200, filled
        assert filled["outputs"] == ["Google IBM Xerox"]

    def test_stored_program_defaults_to_its_learned_catalog(self, client):
        # Saved against "products"; an unrelated default catalog change
        # must not matter when the artifact names its catalog.
        client.put(
            "/catalogs/geo",
            {"tables": [{"name": "Caps", "csv": "Country,Capital\nFrance,Paris\n"}]},
        )
        self.save_expand(client)
        status, filled = client.post(
            "/fill", {"program": "expand", "rows": [["c2 c5 c6"]]}
        )
        assert status == 200
        assert filled["outputs"] == ["Google IBM Xerox"]


class TestTypedErrors:
    def test_unknown_catalog_404(self, client):
        status, reply = client.post(
            "/learn", {"examples": EXAMPLES, "catalog": "nope"}
        )
        assert status == 404
        assert reply["catalog"] == "nope"
        assert "unknown catalog" in reply["error"]

    def test_duplicate_table_409_names_table(self, client):
        status, reply = client.post(
            "/catalogs/products/tables",
            {"name": "Comp", "columns": ["a"], "rows": [["x"]]},
        )
        assert status == 409
        assert reply["table"] == "Comp"
        assert reply["catalog"] == "products"

    def test_duplicate_csv_header_400_names_column_and_positions(self, client):
        status, reply = client.post(
            "/catalogs/geo/tables?name=Bad",
            raw=b"Id,Name,Id\nx,y,z\n",
            content_type="text/csv",
        )
        assert status == 400
        assert reply["column"] == "Id"
        assert reply["positions"] == [1, 3]
        assert reply["table"] == "Bad"

    def test_empty_catalog_learn_422(self, client):
        client.put("/catalogs/empty", {"tables": []})
        status, reply = client.post(
            "/learn", {"examples": EXAMPLES, "catalog": "empty"}
        )
        assert status == 422
        assert "empty catalog" in reply["error"]
        assert "'empty'" in reply["error"]

    def test_missing_columns_400_names_them(self, client):
        learned = self.learn_payload(client)
        client.put(
            "/catalogs/lost",
            {
                "tables": [
                    {
                        "name": "Comp",
                        "columns": ["Other"],
                        "rows": [["x"]],
                    }
                ]
            },
        )
        status, reply = client.post(
            "/fill",
            {"program": learned, "rows": [["c1"]], "catalog": "lost"},
        )
        assert status == 400
        assert "missing" in reply
        assert any("Comp." in name for name in reply["missing"])

    def test_missing_tables_400_names_them(self, client):
        learned = self.learn_payload(client)
        client.put("/catalogs/bare", {"tables": [
            {"name": "Unrelated", "columns": ["a"], "rows": [["x"]]}
        ]})
        status, reply = client.post(
            "/fill",
            {"program": learned, "rows": [["c1"]], "catalog": "bare"},
        )
        assert status == 400
        assert reply["missing"] == ["Comp"]

    def test_bad_table_spec_400(self, client):
        for spec in (
            {"columns": ["a"], "rows": [["x"]]},  # no name
            {"name": "T"},  # neither csv nor columns/rows
            {"name": "T", "csv": "a\nx\n", "columns": ["a"]},  # both
        ):
            status, reply = client.post("/catalogs/geo/tables", spec)
            assert status == 400, spec
            assert "error" in reply

    def learn_payload(self, client):
        _, reply = client.post(
            "/learn", {"examples": EXAMPLES, "catalog": "products"}
        )
        return reply["programs"][0]["program"]
