"""The interactive synthesis session (paper §3.2).

A session fixes a catalog and a language, accepts examples one at a time
(maintaining the version space incrementally, exactly the Synthesize loop
of §3.1), and exposes:

* :meth:`learn` -- the top-ranked program,
* :meth:`apply` -- run the learned program over the remaining rows,
* :meth:`highlight_ambiguous` -- the interaction model's "inputs whose
  output set contains at least two outputs" check, run over a sample of
  surviving consistent programs,
* :meth:`consistent_count` / :meth:`structure_size` -- the Figure 11
  metrics for the current version space.

.. deprecated:: 1.1
    For one-shot and batch workloads prefer the richer
    :class:`repro.api.Synthesizer`, which returns a structured
    :class:`~repro.api.result.SynthesisResult` (ranked candidates,
    metrics, timing).  ``SynthesisSession`` stays for example-at-a-time
    interaction and now dispatches through the same backend registry.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.api.registry import create_backend, resolve_backend_name
from repro.config import DEFAULT_CONFIG, SynthesisConfig
from repro.core.base import InputState
from repro.core.formalism import (
    Example,
    fold_structures,
    generate_structures,
    synthesize_incremental,
)
from repro.engine.program import Program
from repro.exceptions import (
    InconsistentExampleError,
    NoExamplesError,
    SynthesisError,
)
from repro.tables.background import background_catalog
from repro.tables.catalog import Catalog


class SynthesisSession:
    """Learn string transformations from examples against a catalog.

    Args:
        catalog: the user's spreadsheet tables (may be ``None`` for purely
            syntactic sessions).
        language: a registered backend name or alias: ``"semantic"``/``"Lu"``
            (default), ``"lookup"``/``"Lt"``, ``"syntactic"``/``"Ls"``, or
            any backend added via :func:`repro.api.register_backend`.
        background: names of §6 background tables to merge into the
            catalog (e.g. ``["Month", "DateOrd"]``), or ``"all"``.
        config: synthesis/ranking knobs.

    >>> session = SynthesisSession(catalog, background=["Month"])  # doctest: +SKIP
    >>> session.add_example(("6-3-2008",), "Jun 3rd, 2008")        # doctest: +SKIP
    >>> session.learn()(("9-24-2007",))                            # doctest: +SKIP
    'Sep 24th, 2007'
    """

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        language: str = "semantic",
        background: Union[None, str, Iterable[str]] = None,
        config: SynthesisConfig = DEFAULT_CONFIG,
    ) -> None:
        merged = Catalog(catalog.tables() if catalog is not None else [])
        if background is not None:
            names = None if background == "all" else list(background)
            merged = merged.merged_with(background_catalog(names))
        merged.use_table_index = config.use_table_index
        self.catalog = merged
        self.language_name = resolve_backend_name(language)
        self.config = config
        self._language = create_backend(self.language_name, self.catalog, config)
        self._adapter = self._language.adapter()
        self.examples: List[Example] = []
        self._structure = None

    # ------------------------------------------------------------------
    @property
    def num_inputs(self) -> Optional[int]:
        if not self.examples:
            return None
        return len(self.examples[0][0])

    def add_example(self, inputs: Sequence[str], output: str) -> None:
        """Fold one more input-output example into the version space."""
        state: InputState = tuple(inputs)
        if self.num_inputs is not None and len(state) != self.num_inputs:
            raise InconsistentExampleError(
                f"expected {self.num_inputs} inputs, got {len(state)}"
            )
        self._structure = synthesize_incremental(
            self._adapter, self._structure, (state, output)
        )
        self.examples.append((state, output))

    def add_examples(self, examples: Sequence[Tuple[Sequence[str], str]]) -> None:
        """Fold a batch of examples, intersecting smallest-structure-first.

        Equivalent to calling :meth:`add_example` for each pair -- the
        version space denotes the same program set -- but the per-example
        structures are generated up front and intersected smallest first
        with an early-empty bailout, which is how the batched
        :meth:`repro.api.Synthesizer.synthesize` loop runs (the product
        cost of each intersection is bounded by its operand sizes).  On
        failure the session is left unchanged.
        """
        pairs: List[Example] = [
            (tuple(inputs), output) for inputs, output in examples
        ]
        if not pairs:
            return
        arity = self.num_inputs if self.num_inputs is not None else len(pairs[0][0])
        for state, _ in pairs:
            if len(state) != arity:
                raise InconsistentExampleError(
                    f"expected {arity} inputs, got {len(state)}"
                )
        structures = generate_structures(self._adapter, pairs)
        if self._structure is not None:
            structures.append(self._structure)
        merged = fold_structures(
            self._adapter,
            structures,
            structure_size=self._language.structure_size,
        )
        self._structure = merged
        self.examples.extend(pairs)

    def reset(self) -> None:
        """Forget all examples (start a new task on the same catalog)."""
        self.examples = []
        self._structure = None

    # ------------------------------------------------------------------
    @property
    def structure(self):
        """The current version-space data structure (D_t/D_s/D_u).

        Raises:
            NoExamplesError: before the first :meth:`add_example` call.
        """
        if self._structure is None:
            raise NoExamplesError()
        return self._structure

    def _program_catalog(self) -> Optional[Catalog]:
        if getattr(self._language, "requires_catalog", True):
            return self.catalog
        return None

    def learn(self) -> Program:
        """The top-ranked program consistent with all examples so far."""
        expr = self._language.best_program(self.structure)
        if expr is None:
            raise SynthesisError("the version space is empty")
        return Program(
            expr,
            self._program_catalog(),
            self.language_name,
            self.num_inputs or 0,
            use_compiled_fill=self.config.use_compiled_fill,
        )

    def consistent_programs(self, limit: int = 25) -> List[Program]:
        """A sample of consistent programs (top-ranked first, then others).

        For the semantic language this uses the real top-k extraction
        (§3.2's "top-k transformations can be shown"), topped up with
        enumerated programs; the other languages use best + enumeration.
        """
        catalog = self._program_catalog()
        seen: Set[str] = set()
        programs: List[Program] = []

        def push(expr) -> None:
            key = str(expr)
            if key in seen or len(programs) >= limit:
                return
            seen.add(key)
            programs.append(
                Program(
                    expr,
                    catalog,
                    self.language_name,
                    self.num_inputs or 0,
                    use_compiled_fill=self.config.use_compiled_fill,
                )
            )

        best = self._language.best_program(self.structure)
        if best is not None:
            push(best)
        # Cap the ranked block: adjacent ranks are often behavioural twins
        # (alternate position expressions), while the enumerated block
        # contributes structurally different programs (constants, other
        # lookups) that the ambiguity highlighter needs.
        if hasattr(self._language, "top_programs"):
            ranked = self._language.top_programs(self.structure, k=max(1, limit // 3))
            for _, expr in ranked:
                push(expr)
        for expr in self._language.enumerate_programs(self.structure, limit=limit * 4):
            if len(programs) >= limit:
                break
            push(expr)
        return programs

    # ------------------------------------------------------------------
    def apply(self, rows: Sequence[Sequence[str]]) -> List[Optional[str]]:
        """Run the top-ranked program over ``rows`` (the Apply button)."""
        return self.learn().fill(rows)

    def highlight_ambiguous(
        self, rows: Sequence[Sequence[str]], sample: int = 25
    ) -> List[Tuple[Tuple[str, ...], List[str]]]:
        """Inputs on which surviving programs disagree (§3.2).

        Runs a sample of consistent programs on every row and returns the
        rows with at least two distinct (defined) outputs, together with
        those outputs -- the rows the user should inspect first.
        """
        programs = self.consistent_programs(limit=sample)
        flagged: List[Tuple[Tuple[str, ...], List[str]]] = []
        for row in rows:
            state = tuple(row)
            outputs: List[str] = []
            seen: Set[str] = set()
            for program in programs:
                result = program.run(state)
                if result is not None and result not in seen:
                    seen.add(result)
                    outputs.append(result)
            if len(outputs) >= 2:
                flagged.append((state, outputs))
        return flagged

    def distinguishing_input(
        self, rows: Sequence[Sequence[str]], sample: int = 25
    ) -> Optional[Tuple[str, ...]]:
        """The first input on which consistent programs disagree, if any.

        The oracle-guided flavour of [11]: asking the user for the correct
        output on this input is the fastest way to shrink the space.
        """
        flagged = self.highlight_ambiguous(rows, sample=sample)
        if flagged:
            return flagged[0][0]
        return None

    # -- Figure 11 metrics ------------------------------------------------
    def consistent_count(self) -> int:
        """Number of consistent expressions (Figure 11(a))."""
        return self._language.count_expressions(self.structure)

    def structure_size(self) -> int:
        """Version-space data structure size (Figure 11(b))."""
        return self._language.structure_size(self.structure)


def synthesize(
    examples: Sequence[Tuple[Sequence[str], str]],
    catalog: Optional[Catalog] = None,
    language: str = "semantic",
    background: Union[None, str, Iterable[str]] = None,
    config: SynthesisConfig = DEFAULT_CONFIG,
) -> Program:
    """One-shot functional API: learn the top program from ``examples``.

    .. deprecated:: 1.1
        Thin wrapper over :meth:`repro.api.Synthesizer.synthesize`, kept
        for compatibility; the new call returns ranked candidates and
        metrics instead of a bare top-1 program.
    """
    from repro.api.engine import Synthesizer

    engine = Synthesizer(
        catalog=catalog, language=language, background=background, config=config
    )
    return engine.synthesize(examples, k=1).program
