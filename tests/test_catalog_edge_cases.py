"""Catalog-mutation/upload edge cases: duplicate headers, empty catalogs,
lost columns -- typed errors everywhere, no tracebacks.

The satellite bugfix sweep of PR 5: ``table_from_csv_text`` (and
therefore every CSV upload path) rejects duplicate headers with a
:class:`DuplicateColumnError` naming the column and its 1-based
positions; learning against an empty catalog through the service raises
a typed :class:`EmptyCatalogError` (while the bare engine keeps the
paper's permissive Lu-subsumes-Ls behavior); and serving a program whose
tables lost referenced columns is refused up front with the missing
``Table.Column`` names -- library, CLI and HTTP alike.
"""

import pytest

from repro.api.engine import Synthesizer
from repro.cli import main
from repro.engine.program import Program
from repro.engine.session import SynthesisSession
from repro.exceptions import (
    DuplicateColumnError,
    EmptyCatalogError,
    MissingColumnsError,
    NoProgramFoundError,
)
from repro.service.service import SynthesisService
from repro.tables.catalog import Catalog
from repro.tables.io import load_table_csv, table_from_csv_text
from repro.tables.table import Table

COMP_ROWS = [("c1", "Microsoft"), ("c2", "Google"), ("c3", "Apple")]


def comp_catalog():
    return Catalog([Table("Comp", ["Id", "Name"], COMP_ROWS, keys=[("Id",)])])


class TestDuplicateHeaders:
    def test_csv_text_rejects_duplicate_header(self):
        with pytest.raises(DuplicateColumnError) as excinfo:
            table_from_csv_text("T", "a,b,a\n1,2,3\n")
        assert excinfo.value.column == "a"
        assert excinfo.value.positions == (1, 3)
        assert excinfo.value.table == "T"
        assert "position 1 and position 3" in str(excinfo.value)

    def test_csv_file_rejects_duplicate_header(self, tmp_path):
        path = tmp_path / "Dup.csv"
        path.write_text("Id,Name,Id\nx,y,z\n", encoding="utf-8")
        with pytest.raises(DuplicateColumnError) as excinfo:
            load_table_csv(path)
        assert excinfo.value.column == "Id"
        assert excinfo.value.positions == (1, 3)

    def test_table_constructor_names_duplicate_positions(self):
        with pytest.raises(DuplicateColumnError) as excinfo:
            Table("T", ["x", "y", "x", "x"], [("1", "2", "3", "4")])
        assert excinfo.value.positions == (1, 3)  # first clash wins

    def test_cli_catalog_add_rejects_duplicate_header(self, tmp_path, capsys):
        bad = tmp_path / "Bad.csv"
        bad.write_text("a,a\n1,2\n", encoding="utf-8")
        code = main(
            ["catalog", "add", "--root", str(tmp_path / "root"), "demo", str(bad)]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "duplicate column 'a'" in err
        # Validation failed before anything was written.
        assert not (tmp_path / "root" / "demo").exists()


class TestEmptyCatalog:
    def test_engine_stays_permissive(self):
        # Lu subsumes Ls (paper §5): a purely syntactic task must keep
        # working against an empty catalog at the library level.
        result = Synthesizer(Catalog([])).synthesize(
            [(("Alan Turing",), "Turing")]
        )
        assert result.program(("Grace Hopper",)) == "Hopper"

    def test_session_stays_permissive(self):
        session = SynthesisSession(Catalog([]))
        session.add_example(("Alan Turing",), "Turing")
        assert session.learn()(("Grace Hopper",)) == "Hopper"

    def test_lookup_engine_raises_typed_synthesis_error(self):
        with pytest.raises(NoProgramFoundError):
            Synthesizer(Catalog([]), language="lookup").synthesize(
                [(("c1",), "Microsoft")]
            )

    def test_service_refuses_with_catalog_name(self):
        service = SynthesisService(Catalog([]))
        with pytest.raises(EmptyCatalogError) as excinfo:
            service.learn([(("c1",), "Microsoft")])
        assert excinfo.value.catalog_name == "default"
        assert "'default'" in str(excinfo.value)

    def test_service_allows_syntactic_backend(self):
        service = SynthesisService(Catalog([]), language="syntactic")
        reply = service.learn([(("Alan Turing",), "Turing")])
        assert reply.result.program(("Grace Hopper",)) == "Hopper"

    def test_service_counts_refused_learn_consistently(self):
        service = SynthesisService(Catalog([]))
        with pytest.raises(EmptyCatalogError):
            service.learn([(("c1",), "Microsoft")])
        stats = service.stats()
        # The request was refused before it was counted or cached.
        assert stats["requests"]["learn_requests"] == 0
        assert stats["request_cache"]["entries"] == 0


class TestMissingColumns:
    def lookup_program(self):
        result = Synthesizer(comp_catalog(), language="lookup").synthesize(
            [(("c1",), "Microsoft"), (("c2",), "Google")]
        )
        return result.program

    def test_required_columns_reported(self):
        program = self.lookup_program()
        required = program.required_columns()
        assert ("Comp", "Id") in required and ("Comp", "Name") in required

    def test_missing_columns_detected(self):
        program = self.lookup_program()
        renamed = Catalog(
            [Table("Comp", ["Ident", "Title"],
                   [(i, n) for i, n in COMP_ROWS], keys=[("Ident",)])]
        )
        rebuilt = Program.from_dict(program.to_dict(), catalog=renamed)
        assert rebuilt.missing_tables(renamed) == ()
        missing = rebuilt.missing_columns(renamed)
        assert set(missing) == {"Comp.Id", "Comp.Name"}

    def test_service_fill_refuses_before_running_rows(self):
        program = self.lookup_program()
        renamed = Catalog(
            [Table("Comp", ["Ident", "Title"],
                   [(i, n) for i, n in COMP_ROWS], keys=[("Ident",)])]
        )
        service = SynthesisService(renamed)
        with pytest.raises(MissingColumnsError) as excinfo:
            service.fill(program.to_dict(), [["c1"]])
        assert "Comp.Id" in excinfo.value.missing

    def test_cli_fill_exits_cleanly_naming_columns(self, tmp_path, capsys):
        program = self.lookup_program()
        artifact = tmp_path / "prog.json"
        artifact.write_text(program.to_json(), encoding="utf-8")
        table_csv = tmp_path / "Comp.csv"
        table_csv.write_text(
            "Ident,Title\nc1,Microsoft\n", encoding="utf-8"
        )
        rows_csv = tmp_path / "rows.csv"
        rows_csv.write_text("c1\n", encoding="utf-8")
        code = main(
            [
                "fill",
                "--program", str(artifact),
                "--rows", str(rows_csv),
                "--table", str(table_csv),
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "Comp.Id" in err and "Comp.Name" in err
        assert "Traceback" not in err

    def test_fill_aligned_never_reached_on_missing_columns(self):
        # The refusal happens at resolve time -- no per-row UnknownColumn
        # error can leak out of a half-filled batch.
        program = self.lookup_program()
        renamed = Catalog(
            [Table("Comp", ["Ident", "Title"],
                   [(i, n) for i, n in COMP_ROWS], keys=[("Ident",)])]
        )
        service = SynthesisService(renamed)
        with pytest.raises(MissingColumnsError):
            service.fill(program.to_dict(), [["c1"], ["c2"], ["c3"]])
