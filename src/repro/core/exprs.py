"""Expressions shared by every language: the input variable ``v_i``."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.base import EvalResult, Expression, InputState

if TYPE_CHECKING:  # pragma: no cover
    from repro.tables.catalog import Catalog


class Var(Expression):
    """The input string variable ``v_i`` (0-based ``index``, printed 1-based)."""

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        if index < 0:
            raise ValueError(f"variable index must be >= 0, got {index}")
        self.index = index

    def evaluate(self, state: InputState, catalog: "Catalog | None" = None) -> EvalResult:
        if self.index >= len(state):
            return None
        return state[self.index]

    def _key(self) -> tuple:
        return (self.index,)

    def __str__(self) -> str:
        return f"v{self.index + 1}"
