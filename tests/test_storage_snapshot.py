"""Persistent index snapshots: roundtrip, versioning, crash recovery.

The snapshot files are the cold-start path of ``repro serve``: a torn or
corrupt write must never take the service down, it must fall back to the
newest *complete* version (or rebuild from CSVs).  The crash test kills
a real writer subprocess with SIGKILL mid-save and asserts the survivor
loads; the concurrency test runs readers against a SQLite backend while
a writer appends, asserting every observed fingerprint is a committed
generation -- never a torn mix.
"""

import json
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.exceptions import SnapshotError
from repro.storage import (
    SQLiteBackend,
    gc_snapshots,
    hash_sources,
    ingest_catalog,
    latest_snapshot_info,
    load_catalog_snapshot,
    save_catalog_snapshot,
)
from repro.tables.catalog import Catalog
from repro.tables.table import Table


def make_catalog(extra_rows=()):
    rows = [("1", "Microsoft"), ("2", "IBM"), ("3", "Apple")] + list(extra_rows)
    return Catalog(
        [
            Table("Comp", ["Id", "Name"], rows, keys=[("Id",)]),
            Table("Reg", ["Code", "City"], [("MS", "Redmond"), ("NY", "Armonk")]),
        ]
    ).freeze()


class TestRoundtrip:
    def test_save_load_is_identical(self, tmp_path):
        catalog = make_catalog()
        info = save_catalog_snapshot(tmp_path, catalog)
        assert info["version"] == 1
        loaded = load_catalog_snapshot(tmp_path)
        assert loaded is not None
        assert loaded.fingerprint() == catalog.fingerprint()
        assert loaded.distinct_values() == catalog.distinct_values()
        for name in catalog.table_names():
            assert loaded.table(name) == catalog.table(name)
            assert loaded.table(name).fingerprint() == catalog.table(name).fingerprint()
        probe = "Microsoft and IBM"
        assert loaded.substring_index().build().overlapping(
            probe, 2
        ) == catalog.substring_index().build().overlapping(probe, 2)
        assert loaded.occurrences_of("IBM") == catalog.occurrences_of("IBM")

    def test_resave_unchanged_is_noop(self, tmp_path):
        catalog = make_catalog()
        first = save_catalog_snapshot(tmp_path, catalog)
        second = save_catalog_snapshot(tmp_path, catalog)
        assert second["version"] == first["version"]
        assert len(list(tmp_path.glob("manifest-*.json"))) == 1

    def test_append_writes_new_version_reusing_blobs(self, tmp_path):
        catalog = make_catalog()
        save_catalog_snapshot(tmp_path, catalog)
        blobs_before = set((tmp_path / "objects").iterdir())
        grown = catalog.with_rows("Comp", [("4", "Google")])
        info = save_catalog_snapshot(tmp_path, grown)
        assert info["version"] == 2
        blobs_after = set((tmp_path / "objects").iterdir())
        # Content addressing: the unchanged Reg table blob is shared.
        assert blobs_before & blobs_after
        loaded = load_catalog_snapshot(tmp_path)
        assert loaded.fingerprint() == grown.fingerprint()

    def test_sources_mismatch_refuses(self, tmp_path):
        catalog = make_catalog()
        save_catalog_snapshot(tmp_path, catalog, sources={"Comp.csv": "aaa"})
        assert load_catalog_snapshot(tmp_path, sources={"Comp.csv": "aaa"}) is not None
        assert load_catalog_snapshot(tmp_path, sources={"Comp.csv": "bbb"}) is None
        assert load_catalog_snapshot(tmp_path, sources={}) is None

    def test_hash_sources_tracks_content(self, tmp_path):
        csv = tmp_path / "T.csv"
        csv.write_text("A\nx\n")
        first = hash_sources([csv])
        csv.write_text("A\ny\n")
        assert hash_sources([csv]) != first
        assert hash_sources([]) == {}


class TestCorruptionFallback:
    def test_corrupt_newest_blob_falls_back_to_older_version(self, tmp_path):
        old = make_catalog()
        save_catalog_snapshot(tmp_path, old)
        grown = old.with_rows("Comp", [("4", "Google")])
        info = save_catalog_snapshot(tmp_path, grown)
        manifest = json.loads(Path(info["path"]).read_text())
        # Corrupt one blob the new version references (bit-flip payload).
        table_blob = manifest["tables"][0]["blob"]
        blob_path = tmp_path / "objects" / f"{table_blob}.bin"
        blob_path.write_bytes(b"\x00" + blob_path.read_bytes()[1:])
        loaded = load_catalog_snapshot(tmp_path)
        assert loaded is not None
        # v2 references a now-corrupt blob; v1 may share blobs with it.
        # Whichever version survives must verify its fingerprint chain.
        assert loaded.fingerprint() in (old.fingerprint(), grown.fingerprint())

    def test_missing_lazy_blob_falls_back_at_load(self, tmp_path):
        # The gram/segment blobs are decoded lazily, but their *presence*
        # is still checked at load time: a dropped blob must reject the
        # version up front, not surface mid-query.
        old = make_catalog()
        save_catalog_snapshot(tmp_path, old)
        grown = old.with_rows("Comp", [("4", "Google")])
        info = save_catalog_snapshot(tmp_path, grown)
        manifest = json.loads(Path(info["path"]).read_text())
        (tmp_path / "objects" / f"{manifest['grams']}.bin").unlink()
        loaded = load_catalog_snapshot(tmp_path)
        assert loaded is not None
        assert loaded.fingerprint() == old.fingerprint()

    def test_bit_rotted_lazy_blob_raises_at_first_query(self, tmp_path):
        # Atomic writes mean a lazy blob can only be *corrupt in place*
        # through bit rot; that is detected by the deferred hash check
        # and raised as SnapshotError at decode, never served silently.
        catalog = make_catalog()
        info = save_catalog_snapshot(tmp_path, catalog)
        manifest = json.loads(Path(info["path"]).read_text())
        blob = tmp_path / "objects" / f"{manifest['grams']}.bin"
        blob.write_bytes(b"\x00" + blob.read_bytes()[1:])
        loaded = load_catalog_snapshot(tmp_path)
        assert loaded is not None  # presence checks pass at load
        assert loaded.fingerprint() == catalog.fingerprint()
        with pytest.raises(SnapshotError):
            loaded.substring_index().containing("Micro")

    def test_truncated_manifest_falls_back(self, tmp_path):
        catalog = make_catalog()
        save_catalog_snapshot(tmp_path, catalog)
        grown = catalog.with_rows("Comp", [("4", "Google")])
        info = save_catalog_snapshot(tmp_path, grown)
        # Tear the newest manifest mid-write (what a crash leaves behind).
        path = Path(info["path"])
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        loaded = load_catalog_snapshot(tmp_path)
        assert loaded is not None
        assert loaded.fingerprint() == catalog.fingerprint()

    def test_checksum_mismatch_is_skipped(self, tmp_path):
        catalog = make_catalog()
        info = save_catalog_snapshot(tmp_path, catalog)
        path = Path(info["path"])
        manifest = json.loads(path.read_text())
        manifest["fingerprint"] = "0" * 64  # tampered, checksum now stale
        path.write_text(json.dumps(manifest))
        assert latest_snapshot_info(tmp_path) is None
        assert load_catalog_snapshot(tmp_path) is None

    def test_undecodable_blob_falls_back(self, tmp_path):
        catalog = make_catalog()
        save_catalog_snapshot(tmp_path, catalog)
        grown = catalog.with_rows("Comp", [("4", "Google")])
        info = save_catalog_snapshot(tmp_path, grown)
        manifest = json.loads(Path(info["path"]).read_text())
        blob = manifest["tables"][0]["blob"]
        # Valid content hash, invalid payload: rewrite blob AND manifest
        # so the content-address check passes but decoding fails.
        import hashlib

        payload = b"not a marshal payload"
        digest = hashlib.sha256(payload).hexdigest()
        (tmp_path / "objects" / f"{digest}.bin").write_bytes(payload)
        manifest["tables"][0]["blob"] = digest
        body = {k: v for k, v in manifest.items() if k != "checksum"}
        manifest["checksum"] = hashlib.sha256(
            json.dumps(body, sort_keys=True, separators=(",", ":")).encode()
        ).hexdigest()
        Path(info["path"]).write_text(json.dumps(manifest))
        loaded = load_catalog_snapshot(tmp_path)
        assert loaded is not None
        assert loaded.fingerprint() == catalog.fingerprint()


class TestGarbageCollection:
    def test_gc_keeps_newest_and_prunes_unreferenced(self, tmp_path):
        catalog = make_catalog()
        save_catalog_snapshot(tmp_path, catalog)
        for step in range(3):
            catalog = catalog.with_rows("Comp", [(str(10 + step), f"Corp{step}")])
            save_catalog_snapshot(tmp_path, catalog)
        assert len(list(tmp_path.glob("manifest-*.json"))) == 4
        summary = gc_snapshots(tmp_path, keep=2)
        assert sorted(summary["kept_versions"]) == [3, 4]
        assert summary["removed_manifests"] == 2
        loaded = load_catalog_snapshot(tmp_path)
        assert loaded.fingerprint() == catalog.fingerprint()
        # Every surviving blob is referenced by a surviving manifest.
        referenced = set()
        for manifest_path in tmp_path.glob("manifest-*.json"):
            manifest = json.loads(manifest_path.read_text())
            referenced.update(entry["blob"] for entry in manifest["tables"])
            referenced.add(manifest["derived"])
            referenced.add(manifest["grams"])
            referenced.update(seg["blob"] for seg in manifest["segments"])
        on_disk = {path.stem for path in (tmp_path / "objects").iterdir()}
        assert on_disk == referenced


_CRASH_WRITER = r"""
import sys
from pathlib import Path

sys.path.insert(0, sys.argv[2])
from repro.storage import save_catalog_snapshot
from repro.tables.catalog import Catalog
from repro.tables.table import Table

directory = Path(sys.argv[1])
rows = [(str(i), "value-%04d" % i) for i in range(200)]
catalog = Catalog([Table("T", ["K", "V"], rows, keys=[("K",)])]).freeze()
save_catalog_snapshot(directory, catalog)
print("READY", flush=True)
step = 0
while True:  # keep writing growing versions until killed
    step += 1
    catalog = catalog.with_rows("T", [(str(1000 + step), "grown-%04d" % step)])
    save_catalog_snapshot(directory, catalog)
    print("SAVED %d" % step, flush=True)
"""


class TestCrashRecovery:
    def test_sigkill_mid_save_leaves_a_loadable_snapshot(self, tmp_path):
        """Satellite: kill the writer process mid-snapshot; a reopening
        reader must fall back to the newest complete version (atomic
        rename + checksum), never crash, never load a torn state."""
        src = Path(__file__).resolve().parent.parent / "src"
        directory = tmp_path / "snaps"
        directory.mkdir()
        proc = subprocess.Popen(
            [sys.executable, "-c", _CRASH_WRITER, str(directory), str(src)],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "READY"
            # Let it write a few versions, then kill without warning --
            # with luck mid-write; either way the load below must succeed.
            deadline = time.time() + 5.0
            while time.time() < deadline:
                line = proc.stdout.readline().strip()
                if line == "SAVED 2":
                    break
            time.sleep(0.05)
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == -signal.SIGKILL
        loaded = load_catalog_snapshot(directory)
        assert loaded is not None, "no complete snapshot survived the crash"
        # The survivor is internally consistent: fingerprint chain verified
        # at load; its content answers queries.
        assert loaded.table("T").num_rows >= 200
        assert loaded.occurrences_of("value-0007")
        # Leftover *.tmp / orphan blobs are cleanable.
        gc_snapshots(directory, keep=1)
        assert load_catalog_snapshot(directory) is not None


class TestSQLiteConcurrency:
    def test_readers_never_see_torn_fingerprints(self, tmp_path):
        """Satellite: concurrent readers during appends observe only
        committed generations -- every (generation, fingerprint) pair a
        reader sees must be one the writer actually produced."""
        path = tmp_path / "catalog.db"
        ingest_catalog(path, make_catalog())
        writer = SQLiteBackend(path)
        reader = SQLiteBackend(path)  # second connection set, same file
        committed = {1: writer.snapshot().fingerprint}
        stop = threading.Event()
        observed = []
        errors = []

        def read_loop():
            try:
                while not stop.is_set():
                    snapshot = reader.snapshot()
                    # Touch data through the pinned view, then record.
                    snapshot.distinct_values()
                    observed.append((snapshot.generation, snapshot.fingerprint))
            except Exception as error:  # pragma: no cover - the assertion
                errors.append(error)

        threads = [threading.Thread(target=read_loop) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for step in range(12):
                head = writer.append_rows("Comp", [(str(100 + step), f"Co{step}")])
                committed[head.generation] = head.fingerprint
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not errors, errors
        assert observed
        for generation, fingerprint in observed:
            assert committed.get(generation) == fingerprint, (
                f"torn read: generation {generation} reported {fingerprint}"
            )
        writer.close()
        reader.close()

    def test_two_writers_serialize_through_busy_timeout(self, tmp_path):
        """Two backend instances appending to one file: BEGIN IMMEDIATE
        plus busy_timeout serializes them; no append is lost."""
        path = tmp_path / "catalog.db"
        ingest_catalog(path, make_catalog())
        first = SQLiteBackend(path, busy_timeout_ms=10000)
        second = SQLiteBackend(path, busy_timeout_ms=10000)
        errors = []

        def append_many(backend, prefix):
            try:
                for index in range(8):
                    backend.append_rows("Reg", [(f"{prefix}{index}", "City")])
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=append_many, args=(first, "a")),
            threading.Thread(target=append_many, args=(second, "b")),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        first.close()
        second.close()
        reopened = SQLiteBackend(path)
        head = reopened.snapshot()
        assert head.tables[1].num_rows == 2 + 16  # nothing lost
        assert head.generation == 1 + 16  # one generation per append
        # The final state equals the in-memory result of *some*
        # serialization; row content is order-dependent, so check the
        # multiset of appended codes instead.
        codes = {row[0] for row in head.rows(1, 0, 99)}
        assert codes == {"MS", "NY"} | {f"a{i}" for i in range(8)} | {
            f"b{i}" for i in range(8)
        }
        reopened.close()
