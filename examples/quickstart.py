#!/usr/bin/env python3
"""Quickstart: learn a semantic string transformation from one example.

This is the paper's Example 6: a spreadsheet column holds series of
company codes ("c4 c3 c1") that should be expanded into company names
using a lookup table.  One input-output example is enough -- the ranking
of §5.4 picks the generalizing lookup program over the constant one.

The `Synthesizer` engine returns a structured result: ranked candidate
programs with scores, the Figure 11 version-space metrics, timing and an
ambiguity flag.  The learned program serializes to JSON, so it can be
cached and applied later with zero synthesis cost.

Run:  python examples/quickstart.py
"""

from repro import Catalog, Program, Synthesizer, Table


def main() -> None:
    # The user's lookup table (Figure 7 of the paper).
    comp = Table(
        "Comp",
        ["Id", "Name"],
        [
            ("c1", "Microsoft"),
            ("c2", "Google"),
            ("c3", "Apple"),
            ("c4", "Facebook"),
            ("c5", "IBM"),
            ("c6", "Xerox"),
        ],
        keys=[("Id",), ("Name",)],
    )

    catalog = Catalog([comp])
    engine = Synthesizer(catalog)

    # One example expresses the intent.
    result = engine.synthesize(
        [(("c4 c3 c1",), "Facebook Apple Microsoft")], k=3
    )

    program = result.program
    print("Learned program:")
    print(" ", program.source())
    print()
    print("In plain words:")
    print(" ", program.describe())
    print()

    print("Top-ranked candidates (lower score = preferred):")
    for candidate in result.programs:
        print(f"  rank {candidate.rank}  score {candidate.score:7.1f}  "
              f"[{candidate.provenance}]")
    print()

    # Fill in the rest of the column.
    pending = [("c2 c5 c6",), ("c1 c5 c4",), ("c2 c3 c4",)]
    print("Applying to the remaining rows:")
    for row, value in zip(pending, result.fill(pending)):
        print(f"  {row[0]!r:14} -> {value!r}")

    # How big is the space of consistent programs it chose from?
    from repro.api.result import count_log10

    print()
    print(f"Consistent programs represented: about 10^"
          f"{count_log10(result.consistent_count):.0f}")
    print(f"Version-space structure size:    {result.structure_size} units")
    print(f"Learned in:                      {result.elapsed_seconds * 1000:.0f} ms")
    print(f"Still ambiguous:                 {result.ambiguous}")

    # Serialize the program, reload it, and serve without re-synthesis.
    # Serving runs lookups against the table's inverted value index, so
    # fill() over large tables is O(1) per row (see PERFORMANCE.md).
    payload = program.to_json()
    served = Program.from_json(payload, catalog=catalog)
    print()
    print("Round-tripped through JSON:")
    print(f"  {'c6 c2 c5'!r:14} -> {served(('c6 c2 c5',))!r}")

    # Synthesis itself runs on indexed hot paths (catalog substring
    # index, dag occurrence index, worklist pruning).  Each index can be
    # switched back to its naive oracle via SynthesisConfig -- e.g.
    # Synthesizer(catalog, config=DEFAULT_CONFIG.without_indexes()) or
    # replace(DEFAULT_CONFIG, use_substring_index=False); results are
    # identical either way, only the speed changes.

    # To keep this loop resident -- learned programs persisted by name,
    # repeated learns served from an LRU request cache, everything
    # behind a JSON HTTP API -- see examples/service_loop.py and
    # `repro serve` (the repro.service package).


if __name__ == "__main__":
    main()
