#!/usr/bin/env python3
"""Paper Examples 7 and 8: standard data types via background knowledge.

Times and dates are manipulated with zero user tables: the §6 background
tables (Time, Month, DateOrd) encode the domain knowledge (18 -> 6 PM,
6 -> Jun, 3 -> 3rd) and the synthesizer composes lookups into them with
substring extraction.

Run:  python examples/datetime_formatting.py
"""

from repro import SynthesisSession


def spot_times() -> None:
    print("Example 7 -- spot times to h:mm AM/PM")
    session = SynthesisSession(background=["Time"])
    session.add_example(("1800",), "6:00 PM")
    session.add_example(("0730",), "7:30 AM")

    program = session.learn()
    print("  program:", program.source())
    for value in ("2345", "0915", "1200", "0005"):
        print(f"  {value} -> {program((value,))}")
    print()


def date_formatting() -> None:
    print("Example 8 -- m-d-yyyy to 'Mon d(th), yyyy'")
    session = SynthesisSession(background=["Month", "DateOrd"])
    session.add_example(("6-3-2008",), "Jun 3rd, 2008")

    program = session.learn()
    print("  program:", program.source())
    print("  meaning:", program.describe())
    for value in ("3-26-2010", "8-1-2009", "9-24-2007", "12-2-2011"):
        print(f"  {value} -> {program((value,))}")
    print()


def main() -> None:
    spot_times()
    date_formatting()


if __name__ == "__main__":
    main()
