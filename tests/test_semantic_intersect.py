"""Unit tests for Intersect_u and its pruning fixpoint (paper §5.3)."""

import pytest

from repro.core.formalism import Synthesize
from repro.exceptions import NoProgramFoundError
from repro.semantic.language import SemanticLanguage
from repro.tables import Catalog, Table
from repro.tables.background import background_catalog


@pytest.fixture()
def comp_catalog():
    return Catalog(
        [
            Table(
                "Comp",
                ["Id", "Name"],
                [
                    ("c1", "Microsoft"),
                    ("c2", "Google"),
                    ("c3", "Apple"),
                    ("c4", "Facebook"),
                    ("c5", "IBM"),
                    ("c6", "Xerox"),
                ],
                keys=[("Id",), ("Name",)],
            )
        ]
    )


class TestExample6:
    def test_two_examples_stay_consistent(self, comp_catalog):
        language = SemanticLanguage(comp_catalog)
        examples = [
            (("c4 c3 c1",), "Facebook Apple Microsoft"),
            (("c2 c5 c6",), "Google IBM Xerox"),
        ]
        structure = Synthesize(language.adapter(), examples)
        program = language.best_program(structure)
        assert program.evaluate(("c1 c5 c4",), comp_catalog) == "Microsoft IBM Facebook"

    def test_intersection_soundness(self, comp_catalog):
        language = SemanticLanguage(comp_catalog)
        examples = [
            (("c4 c3 c1",), "Facebook Apple Microsoft"),
            (("c2 c5 c6",), "Google IBM Xerox"),
        ]
        structure = Synthesize(language.adapter(), examples)
        for program in language.enumerate_programs(structure, limit=40):
            for state, output in examples:
                assert program.evaluate(state, comp_catalog) == output, str(program)

    def test_intersection_reduces_count(self, comp_catalog):
        language = SemanticLanguage(comp_catalog)
        first = language.generate(("c4 c3 c1",), "Facebook Apple Microsoft")
        second = language.generate(("c2 c5 c6",), "Google IBM Xerox")
        merged = language.intersect(first, second)
        assert merged is not None
        assert language.count_expressions(merged) < language.count_expressions(first)


class TestExample7Time:
    def test_two_examples_learn_time_format(self):
        catalog = background_catalog(["Time"])
        language = SemanticLanguage(catalog)
        structure = Synthesize(
            language.adapter(),
            [(("1800",), "6:00 PM"), (("0730",), "7:30 AM")],
        )
        program = language.best_program(structure)
        assert program.evaluate(("2345",), catalog) == "11:45 PM"
        assert program.evaluate(("0915",), catalog) == "9:15 AM"
        assert program.evaluate(("1200",), catalog) == "12:00 PM"
        assert program.evaluate(("0000",), catalog) == "0:00 AM"


class TestPruning:
    def test_constant_program_dies_across_outputs(self, comp_catalog):
        language = SemanticLanguage(comp_catalog)
        first = language.generate(("c4",), "Facebook")
        second = language.generate(("c2",), "Google")
        merged = language.intersect(first, second)
        assert merged is not None
        # The all-constant path cannot survive different outputs; every
        # remaining program must be input-driven.
        program = language.best_program(merged)
        assert program.evaluate(("c5",), comp_catalog) == "IBM"

    def test_empty_intersection_returns_none(self, comp_catalog):
        language = SemanticLanguage(comp_catalog)
        # Contradiction: same input, different outputs.
        first = language.generate(("c4",), "Facebook")
        second = language.generate(("c4",), "Google")
        assert language.intersect(first, second) is None

    def test_synthesize_raises_on_contradiction(self, comp_catalog):
        language = SemanticLanguage(comp_catalog)
        with pytest.raises(NoProgramFoundError):
            Synthesize(
                language.adapter(),
                [(("c4",), "Facebook"), (("c4",), "Google")],
            )

    def test_three_example_fold(self, comp_catalog):
        language = SemanticLanguage(comp_catalog)
        structure = Synthesize(
            language.adapter(),
            [
                (("c4 c3 c1",), "Facebook Apple Microsoft"),
                (("c2 c5 c6",), "Google IBM Xerox"),
                (("c1 c5 c4",), "Microsoft IBM Facebook"),
            ],
        )
        program = language.best_program(structure)
        assert program.evaluate(("c2 c3 c4",), comp_catalog) == "Google Apple Facebook"


class TestPureSyntacticWithinLu:
    def test_example4_no_tables_needed(self):
        # Lu subsumes Ls: Example 4 works with an empty-ish catalog.
        catalog = Catalog(
            [Table("Dummy", ["a"], [("zzzqqq",)], keys=[("a",)])]
        )
        language = SemanticLanguage(catalog)
        structure = Synthesize(
            language.adapter(),
            [
                (("Alan Turing",), "Turing A"),
                (("Oliver Heaviside",), "Heaviside O"),
            ],
        )
        program = language.best_program(structure)
        assert program.evaluate(("Grace Hopper",), catalog) == "Hopper G"
