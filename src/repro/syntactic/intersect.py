"""Intersect_s: intersection of two Dags (paper §5.3).

The product construction mirrors finite-automaton intersection: product
nodes are pairs of nodes, and an edge exists where both dags have an edge
whose atom sets intersect.  Atom intersection rules:

* ``ConstAtom`` ∩ ``ConstAtom``: equal text survives,
* ``RefAtom`` ∩ ``RefAtom``: sources must merge (equality for variables;
  node-pair intersection in Lu, supplied via ``merge_source``),
* ``SubStrAtom`` ∩ ``SubStrAtom``: sources must merge and both position
  sets must intersect (``IntersectPos``).

``merge_source(s1, s2)`` returns the merged source id or ``None``; in Lu
it allocates product nodes whose emptiness is only known after the global
pruning fixpoint, so the returned dag may still contain atoms that later
prove empty -- :meth:`Dag.pruned` removes them.

One product BFS serves two strategies (``SynthesisConfig.
use_lazy_intersection`` selects; both give byte-identical dags):

* **eager** (the original, kept as the equivalence oracle): intersect
  atoms on every discovered edge -- including edges on pairs that can
  never reach the accept pair, whose atom work (and, in Lu, product-node
  allocations) is wasted;
* **lazy**: a co-reachability guard evaluated *before* any atom work:
  per-dag bitmasks of path lengths to the target decide in O(1) whether
  a pair can still sit on a start→accept path (each product step
  advances both dags, so the length sets must intersect).

Both paths renumber the surviving pairs canonically (sorted pair order),
so the two strategies -- and any intersection order -- yield dags with
identical node ids, which the equivalence tests compare byte-for-byte.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.syntactic.dag import Atom, ConstAtom, ContentKey, Dag, RefAtom, SubStrAtom
from repro.syntactic.positions import (
    intersect_position_sets,
    intersect_position_sets_cached,
)

MergeSource = Callable[[int, int], Optional[int]]
Pair = Tuple[int, int]
IntersectPos = Callable[..., object]


def equal_source_merge(first: int, second: int) -> Optional[int]:
    """Source merge for pure Ls: variable indices must be equal."""
    return first if first == second else None


def _atom_buckets(options: List[Atom]) -> Tuple[set, List[Atom], List[Atom]]:
    """Bucket an edge's atoms by type (the per-edge half of the pairwise work)."""
    consts = set()
    refs: List[Atom] = []
    substrs: List[Atom] = []
    for atom in options:
        if isinstance(atom, ConstAtom):
            consts.add(atom.text)
        elif isinstance(atom, RefAtom):
            refs.append(atom)
        else:
            substrs.append(atom)
    return consts, refs, substrs


def _make_bucketer() -> Callable[[List[Atom]], Tuple[set, List[Atom], List[Atom]]]:
    """Memoize :func:`_atom_buckets` per edge for one product run.

    An edge of the first dag is paired with every partner edge of the
    second, so the eager/naive path re-buckets the same atom list once per
    partner; the memo (id-keyed: option lists are owned by the live input
    dag for the whole run) does it once per edge.
    """
    cache: Dict[int, Tuple[set, List[Atom], List[Atom]]] = {}

    def bucket(options: List[Atom]) -> Tuple[set, List[Atom], List[Atom]]:
        key = id(options)
        entry = cache.get(key)
        if entry is None:
            entry = _atom_buckets(options)
            cache[key] = entry
        return entry

    return bucket


def _intersect_atoms(
    first: List[Atom],
    second: List[Atom],
    merge_source: MergeSource,
    intersect_pos: IntersectPos = intersect_position_sets,
    buckets: Optional[Tuple[set, List[Atom], List[Atom]]] = None,
) -> List[Atom]:
    """All pairwise atom intersections, bucketed by atom type for speed."""
    result: List[Atom] = []
    consts, refs, substrs = buckets if buckets is not None else _atom_buckets(first)
    for atom in second:
        if isinstance(atom, ConstAtom):
            if atom.text in consts:
                result.append(atom)
        elif isinstance(atom, RefAtom):
            for other in refs:
                merged = merge_source(other.source, atom.source)
                if merged is not None:
                    result.append(RefAtom(merged))
        else:
            for other in substrs:
                merged = merge_source(other.source, atom.source)
                if merged is None:
                    continue
                p1 = intersect_pos(other.p1, atom.p1)
                if p1 is None:
                    continue
                p2 = intersect_pos(other.p2, atom.p2)
                if p2 is None:
                    continue
                result.append(SubStrAtom(merged, p1, p2))
    return result




def _target_length_masks(dag: Dag) -> Dict[int, int]:
    """Per-node bitmask of structural path lengths to the target.

    ``masks[n]`` has bit L set iff some n→target path has exactly L edges.
    One linear pass over the memoized topological order; masks are plain
    ints used as bitsets.
    """
    out = dag.out_neighbors()
    masks: Dict[int, int] = {node: 0 for node in dag.nodes}
    masks[dag.target] = 1
    for node in reversed(dag.topological_order()):
        acc = 0
        for successor in out[node]:
            acc |= masks[successor]
        masks[node] |= acc << 1
    return masks


def _product(
    first: Dag,
    second: Dag,
    merge_source: MergeSource,
    intersect_pos: IntersectPos,
    bucket_of: Callable = _atom_buckets,
    lazy: bool = False,
) -> Tuple[Dict[Tuple[Pair, Pair], List[Atom]], Set[Pair]]:
    """Forward product BFS, optionally guarded by co-reachability masks.

    Returns the recorded edges plus the BFS seen-set (= forward
    reachability over those edges, reused by :func:`_finalize_product`).

    One loop serves both strategies so the oracle cannot drift from the
    optimized path.  With ``lazy`` a product pair (a, b) is explored only
    if some a→target path in ``first`` and some b→target path in
    ``second`` have the *same* number of edges (each product step
    advances both dags); the length sets are per-dag bitmasks, so the
    guard is two dict reads and an AND -- pairs that fail it cost
    nothing: no pairwise atom intersection and, in Lu, no product-node
    allocations through ``merge_source``.  (Start-side reachability needs
    no guard: the BFS only reaches a pair over equal-length live paths by
    construction.)
    """
    start = (first.source, second.source)
    bwd1 = bwd2 = None
    if lazy:
        bwd1 = _target_length_masks(first)
        bwd2 = _target_length_masks(second)
        if not (bwd1[first.source] & bwd2[second.source]):
            return {}, {start}

    out1 = first.out_neighbors()
    out2 = second.out_neighbors()
    edges: Dict[Tuple[Pair, Pair], List[Atom]] = {}
    worklist = [start]
    seen = {start}
    while worklist:
        a, b = worklist.pop()
        for a2 in out1[a]:
            options1 = first.edges.get((a, a2))
            if not options1:
                continue
            bwd1_a2 = bwd1[a2] if lazy else 0
            for b2 in out2[b]:
                if lazy and not (bwd1_a2 & bwd2[b2]):
                    continue  # (a2, b2) is never on a start→accept path
                options2 = second.edges.get((b, b2))
                if not options2:
                    continue
                merged = _intersect_atoms(
                    options1,
                    options2,
                    merge_source,
                    intersect_pos,
                    buckets=bucket_of(options1),
                )
                if not merged:
                    continue
                edges[((a, b), (a2, b2))] = merged
                if (a2, b2) not in seen:
                    seen.add((a2, b2))
                    worklist.append((a2, b2))
    return edges, seen


def _finalize_product(
    edges: Dict[Tuple[Pair, Pair], List[Atom]],
    forward: Set[Pair],
    start: Pair,
    goal: Pair,
) -> Optional[Dag]:
    """Prune the pair graph to start→goal paths and renumber canonically.

    ``forward`` is the BFS's seen-set -- exactly the pairs reachable from
    ``start`` over the recorded edges (a pair enters it when a non-empty
    edge reaches it), so only the backward sweep remains: one linear BFS
    over the reversed adjacency instead of a quadratic while-changed
    fixpoint.
    """
    if goal not in forward:
        return None
    reverse: Dict[Pair, List[Pair]] = {}
    for (i, j) in edges:
        reverse.setdefault(j, []).append(i)
    backward: Set[Pair] = {goal}
    stack = [goal]
    while stack:
        pair = stack.pop()
        for previous in reverse.get(pair, ()):
            if previous not in backward:
                backward.add(previous)
                stack.append(previous)
    alive = forward & backward
    ids = {pair: index for index, pair in enumerate(sorted(alive))}
    # Insertion order of the edge dict is canonical too, so both product
    # strategies return byte-identical dags (dict iteration order leaks
    # into nothing semantic, but determinism should not depend on that).
    final_edges = dict(
        sorted(
            ((ids[i], ids[j]), options)
            for (i, j), options in edges.items()
            if i in alive and j in alive
        )
    )
    return Dag(tuple(range(len(ids))), ids[start], ids[goal], final_edges)


# ----------------------------------------------------------------------
# The dag-level intersection memo (``use_intersection_cache``).
#
# The interaction model of §3.2 re-learns after every new example, so the
# same (running, fresh) products recur across Synthesizer calls -- round k
# redoes every intersection of round k-1.  Atoms are frozen dataclasses
# and position sets plain tuples, so a dag's content key is hashable and
# collision-safe (no object identities involved); serving a repeated
# product from the memo skips the whole pair BFS.  Only sound for the
# pure-variable merge: in Lu ``merge_source`` allocates product-store
# nodes as a side effect, which must rerun per store.
# ----------------------------------------------------------------------

_DAG_CACHE: "OrderedDict[tuple, Optional[Dag]]" = OrderedDict()
_DAG_CACHE_LIMIT = 2048
_DAG_STATS = {"hits": 0, "misses": 0, "evictions": 0}
_DAG_LOCK = threading.Lock()


def _dag_content_key(dag: Dag) -> ContentKey:
    """Structural identity of ``dag``, built fresh on every call.

    Deliberately *not* memoized on the dag: ``Dag.edges`` is publicly
    mutable and a stale cached key would silently corrupt the global memo
    for every later structurally-matching product.  The one extra pass is
    amortized by the product work a memo hit avoids; the
    :class:`~repro.syntactic.dag.ContentKey` wrapper still caches the
    hash so dict lookups do not rehash the whole structure.
    """
    return ContentKey(
        (
            dag.nodes,
            dag.source,
            dag.target,
            tuple(sorted((edge, tuple(atoms)) for edge, atoms in dag.edges.items())),
        )
    )


def dag_cache_stats() -> dict:
    """Hit/miss/eviction/size counters of the dag-level intersection memo."""
    with _DAG_LOCK:
        stats = dict(_DAG_STATS)
        stats["entries"] = len(_DAG_CACHE)
    total = stats["hits"] + stats["misses"]
    stats["hit_rate"] = stats["hits"] / total if total else 0.0
    stats["limit"] = _DAG_CACHE_LIMIT
    return stats


def reset_dag_cache_stats() -> None:
    """Zero the counters (the memo itself is kept)."""
    for key in _DAG_STATS:
        _DAG_STATS[key] = 0


def _private_dag_copy(dag: Optional[Dag]) -> Optional[Dag]:
    """A caller-owned copy of a memoized product (edge lists copied too).

    The memo must never hand out the instance it stores: ``Dag.edges`` is
    publicly mutable, and a caller mutating "its" result would silently
    corrupt every later hit.  Atoms and position sets are immutable, so
    copying the edge dict and its lists is full isolation; the cost is
    linear in the structure -- far below the product work a hit avoids.
    """
    if dag is None:
        return None
    return Dag(
        dag.nodes,
        dag.source,
        dag.target,
        {edge: list(options) for edge, options in dag.edges.items()},
    )


def clear_dag_cache() -> None:
    """Drop the memo (cold-start for benchmarks)."""
    with _DAG_LOCK:
        _DAG_CACHE.clear()


def intersect_dags(
    first: Dag,
    second: Dag,
    merge_source: MergeSource = equal_source_merge,
    lazy: bool = False,
    use_cache: bool = False,
) -> Optional[Dag]:
    """Product-automaton intersection; ``None`` when no common expression.

    ``lazy`` selects the pruned product (atom intersection only on edges
    that can reach the accept pair); ``use_cache`` serves position-set
    intersections from the interned memo, buckets each edge's atoms once
    per run, and (for the pure-variable merge) serves whole repeated
    products from the dag-level memo.  Both default off so the bare call
    is the naive oracle; the languages pass their
    :class:`~repro.config.SynthesisConfig` flags.  Returned node ids are
    canonical (sorted surviving pair order) under every combination.
    """
    if first.is_trivial_empty or second.is_trivial_empty:
        # Only the empty concatenation lives in a trivial dag; intersection
        # is non-empty only if both are trivial.
        if first.is_trivial_empty and second.is_trivial_empty:
            return Dag((0,), 0, 0, {})
        return None

    memo_key = None
    if use_cache and merge_source is equal_source_merge:
        memo_key = (_dag_content_key(first), _dag_content_key(second))
        with _DAG_LOCK:
            if memo_key in _DAG_CACHE:
                _DAG_STATS["hits"] += 1
                _DAG_CACHE.move_to_end(memo_key)
                return _private_dag_copy(_DAG_CACHE[memo_key])
            _DAG_STATS["misses"] += 1

    intersect_pos: IntersectPos = (
        intersect_position_sets_cached if use_cache else intersect_position_sets
    )
    bucket_of: Callable = _make_bucketer() if use_cache else _atom_buckets
    edges, forward = _product(
        first, second, merge_source, intersect_pos, bucket_of, lazy=lazy
    )
    start = (first.source, second.source)
    goal = (first.target, second.target)
    result = _finalize_product(edges, forward, start, goal)
    if memo_key is not None:
        with _DAG_LOCK:
            while len(_DAG_CACHE) >= _DAG_CACHE_LIMIT:
                _DAG_CACHE.popitem(last=False)
                _DAG_STATS["evictions"] += 1
            # Store a private copy: the caller owns ``result`` and may
            # mutate it; hits hand out copies of this stored instance.
            _DAG_CACHE[memo_key] = _private_dag_copy(result)
    return result
