"""The bounded hot-tier cache in front of a storage backend.

A disk-backed catalog trades residency for capacity: every query round
trips to the backend unless the answer is already hot.  This LRU keeps
the recently touched rows, postings and substring answers resident with
a hard entry bound, and reports hit/miss/eviction stats in the same
shape as the engine's other memo caches (``repro.syntactic.positions``
et al.), so ``GET /stats`` can expose per-catalog residency.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Tuple

#: Sentinel distinguishing "not cached" from a cached ``None``.
_MISSING = object()


class HotTierCache:
    """A thread-safe, entry-bounded LRU keyed by hashable tuples.

    Values are treated as immutable (rows tuples, posting tuples) --
    a hit returns the same object the cold fetch produced.  ``limit``
    bounds the *entry count*: the cached values here are small (one
    row, one posting list), so counting entries keeps the bound cheap
    while still giving operators a real residency ceiling to size.
    """

    def __init__(self, limit: int = 4096) -> None:
        if limit < 1:
            raise ValueError(f"cache limit must be >= 1, got {limit}")
        self.limit = limit
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Hashable) -> Any:
        """The cached value, or :data:`_MISSING` via :meth:`lookup`."""
        value, _ = self.lookup(key)
        return value

    def lookup(self, key: Hashable) -> Tuple[Any, bool]:
        """``(value, hit)``; value is ``None`` on a miss."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return None, False
            self._entries.move_to_end(key)
            self._hits += 1
            return value, True

    def put(self, key: Hashable, value: Any) -> Any:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.limit:
                self._entries.popitem(last=False)
                self._evictions += 1
        return value

    def get_or(self, key: Hashable, compute) -> Any:
        """The cached value for ``key``, computing (and caching) on miss.

        ``compute`` runs outside the lock -- backends may take their own
        locks or block on I/O; a racing duplicate computation is benign
        (both results are equal and immutable, last put wins).
        """
        value, hit = self.lookup(key)
        if hit:
            return value
        return self.put(key, compute())

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            total = self._hits + self._misses
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "entries": len(self._entries),
                "limit": self.limit,
                "hit_rate": self._hits / total if total else 0.0,
            }
