"""Unit tests for Intersect_s (dag intersection)."""

from repro.core.formalism import Synthesize
from repro.exceptions import NoProgramFoundError
from repro.syntactic.language import SyntacticLanguage, syntactic_adapter


def learn(examples):
    language = SyntacticLanguage()
    structure = Synthesize(language.adapter(), examples)
    return language, structure


class TestBasicIntersection:
    def test_common_program_survives(self):
        language, dag = learn(
            [
                (("Alan Turing",), "Turing"),
                (("Grace Hopper",), "Hopper"),
            ]
        )
        program = language.best_program(dag)
        assert program.evaluate(("Kurt Godel",)) == "Godel"

    def test_sound_on_both_examples(self):
        examples = [
            (("Alan Turing",), "Turing A"),
            (("Oliver Heaviside",), "Heaviside O"),
        ]
        language, dag = learn(examples)
        for program in language.enumerate_programs(dag, limit=100):
            for state, output in examples:
                assert program.evaluate(state) == output, str(program)

    def test_constants_survive_when_outputs_share_them(self):
        language, dag = learn(
            [
                (("a",), "x-a"),
                (("b",), "x-b"),
            ]
        )
        program = language.best_program(dag)
        assert program.evaluate(("q",)) == "x-q"

    def test_intersection_shrinks_count(self):
        language = SyntacticLanguage()
        first = language.generate(("Alan Turing",), "Turing A")
        second = language.generate(("Oliver Heaviside",), "Heaviside O")
        merged = language.intersect(first, second)
        assert merged is not None
        assert language.count_expressions(merged) < language.count_expressions(first)

    def test_empty_intersection_raises(self):
        # Outputs of different lengths with nothing in common syntactically:
        # every common program must still exist (constants differ), so the
        # only way to fail is contradictory constant outputs on equal input.
        with pytest.raises(NoProgramFoundError):
            learn([(("a",), "xx"), (("a",), "yy")])


import pytest  # noqa: E402  (used in the class above)


class TestThreeExamples:
    def test_fold_over_three(self):
        examples = [
            (("6-3-2008",), "6"),
            (("3-26-2010",), "3"),
            (("8-1-2009",), "8"),
        ]
        language, dag = learn(examples)
        program = language.best_program(dag)
        assert program.evaluate(("9-24-2007",)) == "9"

    def test_variable_identity_required(self):
        # v1 in one example, v2 in the other: intersection must drop the
        # mixed substring atoms but keep the correct variable.
        examples = [
            (("abc", "zzz"), "abc"),
            (("def", "qqq"), "def"),
        ]
        language, dag = learn(examples)
        program = language.best_program(dag)
        assert program.evaluate(("mno", "ppp")) == "mno"


class TestAdapterIntegration:
    def test_adapter_synthesize_single_example(self):
        adapter = syntactic_adapter()
        dag = Synthesize(adapter, [(("hello world",), "world")])
        assert dag.has_path()

    def test_mismatched_arity_rejected(self):
        from repro.exceptions import InconsistentExampleError

        adapter = syntactic_adapter()
        with pytest.raises(InconsistentExampleError):
            Synthesize(adapter, [(("a",), "a"), (("a", "b"), "a")])
