"""Indexed hot paths vs naive scans: the perf-regression harness.

Measures the four hot paths that PR 2 put onto purpose-built indexes,
each against its naive oracle (``SynthesisConfig.without_indexes``):

* ``semantic_reachability`` -- ``generate_semantic`` Phase 1 over a
  scaled catalog: substring-trigger index vs pairwise ``in`` scans,
* ``fill`` -- serve-time ``Program.fill`` over a scaled table:
  per-column inverted index vs full row scans,
* ``dag_generation`` -- ``generate_dag``: per-source occurrence index vs
  repeated ``str.find`` (also reports ``cached_positions`` reuse),
* ``worklist_pruning`` -- emptiness fixpoint: dependency-driven worklist
  vs repeated full-node sweeps.

Usage::

    PYTHONPATH=src python benchmarks/bench_indexing.py                  # run + print
    PYTHONPATH=src python benchmarks/bench_indexing.py --out BENCH_indexing.json
    PYTHONPATH=src python benchmarks/bench_indexing.py --quick \
        --check BENCH_indexing.json          # CI: fail on >2x regression

``--check`` compares *speedups* (indexed vs naive on the same machine,
same run), so the gate is stable across hardware; it fails when any
benchmark's current speedup drops below ``baseline / --factor``.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Dict, List, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.config import DEFAULT_CONFIG
from repro.engine.program import Program
from repro.lookup.ast import Select
from repro.core.exprs import Var
from repro.lookup.dstruct import GenPredicate, GenSelect, NodeStore, RowCondition, VarEntry
from repro.semantic.generate import generate_semantic
from repro.semantic.intersect import (
    valid_nodes_fixpoint,
    valid_nodes_fixpoint_naive,
)
from repro.syntactic.dag import Dag, RefAtom
from repro.syntactic.generate import generate_dag
from repro.syntactic.positions import position_cache_stats, reset_position_cache_stats
from repro.tables.catalog import Catalog
from repro.tables.table import Table

INDEXED = DEFAULT_CONFIG
NAIVE = DEFAULT_CONFIG.without_indexes()


def _timeit(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds for one call of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


# -- scaled inputs -----------------------------------------------------------
def reachability_catalog(num_cells: int) -> Tuple[Catalog, Tuple[str, ...], str]:
    """A ``num_cells``-cell catalog plus a wide input state.

    Phase 1 of ``generate_semantic`` scales with |distinct values| x
    |frontier|; a wide input row (many variables, two containing real
    keys) makes the trigger scan the dominant cost while keeping the
    matched-row set -- hence the shared dag-building phases -- small.
    """
    columns = ["Id", "C1", "C2", "C3", "C4"]
    num_rows = max(1, num_cells // len(columns))
    rows = [
        tuple([f"K{r:05d}"] + [f"v{r:05d}{c}" for c in range(1, 5)])
        for r in range(num_rows)
    ]
    catalog = Catalog([Table("Cat", columns, rows, keys=[("Id",)])])
    rng = random.Random(0)
    filler = [
        "".join(rng.choices("abcdefghijklmnopqrstuwxyz", k=12)) for _ in range(48)
    ]
    hit_one = rows[num_rows // 3][0]
    hit_two = rows[(2 * num_rows) // 3][0]
    state = tuple(filler + [f"order {hit_one} due", f"ship {hit_two} now"])
    output = rows[num_rows // 3][2]
    return catalog, state, output


def bench_semantic_reachability(num_cells: int, repeats: int) -> Dict[str, float]:
    catalog, state, output = reachability_catalog(num_cells)
    catalog.substring_index().build()  # outside the timed region (built
    # once, reused across every synthesize call on this catalog)
    started = time.perf_counter()
    Catalog(catalog.tables()).substring_index().build()
    build_s = time.perf_counter() - started
    naive_s = _timeit(lambda: generate_semantic(catalog, state, output, NAIVE), repeats)
    indexed_s = _timeit(
        lambda: generate_semantic(catalog, state, output, INDEXED), repeats
    )
    return {
        "naive_s": naive_s,
        "indexed_s": indexed_s,
        "speedup": naive_s / indexed_s,
        "index_build_s": build_s,
    }


def bench_fill(num_rows: int, num_queries: int, repeats: int) -> Dict[str, float]:
    rows = [(f"K{r:06d}", f"value-{r:06d}") for r in range(num_rows)]
    catalog = Catalog([Table("Big", ["Id", "Val"], rows, keys=[("Id",)])])
    program = Program(
        Select("Val", "Big", [("Id", Var(0))]), catalog, "lookup", num_inputs=1
    )
    rng = random.Random(1)
    queries = [(rows[rng.randrange(num_rows)][0],) for _ in range(num_queries)]
    expected = [catalog.table("Big").cell("Val", int(q[0][1:])) for q in queries]

    table = catalog.table("Big")
    table.find_rows({"Id": rows[0][0]})  # build the inverted index up front

    indexed_s = _timeit(lambda: program.fill(queries), repeats)
    # Flip the serve path to the naive scan (what Synthesizer does for a
    # config with use_table_index=False).
    catalog.use_table_index = False
    try:
        assert program.fill(queries) == expected
        naive_s = _timeit(lambda: program.fill(queries), repeats)
    finally:
        catalog.use_table_index = True
    assert program.fill(queries) == expected
    return {"naive_s": naive_s, "indexed_s": indexed_s, "speedup": naive_s / indexed_s}


def bench_dag_generation(
    num_sources: int, output_len: int, repeats: int
) -> Dict[str, float]:
    rng = random.Random(2)
    alphabet = "abcdef-123 "
    output = "".join(rng.choices(alphabet, k=output_len))
    sources = []
    for source_id in range(num_sources):
        # Half the sources embed real substrings of the output so the
        # occurrence lists are non-trivial, half are misses.
        if source_id % 2 == 0:
            start = rng.randrange(max(1, output_len - 6))
            text = "x" + output[start : start + 6] + "y"
        else:
            text = "".join(rng.choices(alphabet, k=14))
        sources.append((source_id, text))
    generate_dag(sources, output, INDEXED)  # warm the position cache
    reset_position_cache_stats()
    naive_s = _timeit(lambda: generate_dag(sources, output, NAIVE), repeats)
    indexed_s = _timeit(lambda: generate_dag(sources, output, INDEXED), repeats)
    stats = position_cache_stats()
    return {
        "naive_s": naive_s,
        "indexed_s": indexed_s,
        "speedup": naive_s / indexed_s,
        "position_cache_hit_rate": round(stats["hit_rate"], 4),
    }


def chain_store(length: int) -> NodeStore:
    """Node i needs node i+1 valid; only the last node is a variable.

    Ascending-id sweeps validate one node per pass -- the worst case for
    the naive fixpoint, O(n) sweeps -- while the worklist settles it in
    one propagation per node.
    """
    store = NodeStore()
    for node in range(length):
        store.new_node(f"n{node}")
    for node in range(length - 1):
        dag = Dag((0, 1), 0, 1, {(0, 1): [RefAtom(node + 1)]})
        condition = RowCondition("T", node, [[GenPredicate("C", dag=dag)]])
        store.progs[node].append(GenSelect("C", "T", condition))
    store.progs[length - 1].append(VarEntry(0))
    store.target = 0
    return store


def bench_worklist_pruning(length: int, repeats: int) -> Dict[str, float]:
    store = chain_store(length)
    expected = set(range(length))
    assert valid_nodes_fixpoint(store) == expected
    assert valid_nodes_fixpoint_naive(store) == expected
    naive_s = _timeit(lambda: valid_nodes_fixpoint_naive(store), repeats)
    indexed_s = _timeit(lambda: valid_nodes_fixpoint(store), repeats)
    return {"naive_s": naive_s, "indexed_s": indexed_s, "speedup": naive_s / indexed_s}


# -- harness -----------------------------------------------------------------
def run_suite(quick: bool) -> Dict[str, Dict[str, float]]:
    repeats = 2 if quick else 3
    cell_sizes = [1_000] if quick else [1_000, 10_000, 100_000]
    row_sizes = [1_000] if quick else [1_000, 10_000, 100_000]
    results: Dict[str, Dict[str, float]] = {}
    for cells in cell_sizes:
        name = f"semantic_reachability[cells={cells}]"
        print(f"running {name} ...", flush=True)
        results[name] = bench_semantic_reachability(cells, repeats)
    for rows in row_sizes:
        name = f"fill[rows={rows}]"
        print(f"running {name} ...", flush=True)
        results[name] = bench_fill(rows, num_queries=min(rows, 500), repeats=repeats)
    name = "dag_generation[sources=40,len=30]"
    print(f"running {name} ...", flush=True)
    # The smallest win of the four; extra repeats keep best-of stable.
    results[name] = bench_dag_generation(40, 30, repeats * 3)
    length = 400  # same size in quick mode so --check can compare it
    name = f"worklist_pruning[chain={length}]"
    print(f"running {name} ...", flush=True)
    results[name] = bench_worklist_pruning(length, repeats)
    return results


def render(results: Dict[str, Dict[str, float]]) -> List[str]:
    width = max(len(name) for name in results)
    lines = [f"{'benchmark'.ljust(width)}  {'naive':>10}  {'indexed':>10}  {'speedup':>8}"]
    for name, row in results.items():
        lines.append(
            f"{name.ljust(width)}  {row['naive_s']:>9.4f}s  {row['indexed_s']:>9.4f}s  "
            f"{row['speedup']:>7.1f}x"
        )
    return lines


def check_regression(
    results: Dict[str, Dict[str, float]], baseline_path: Path, factor: float
) -> int:
    baseline = json.loads(baseline_path.read_text())["results"]
    failures = []
    for name, row in results.items():
        reference = baseline.get(name)
        if reference is None:
            print(f"note: {name} not in baseline, skipping")
            continue
        floor = reference["speedup"] / factor
        status = "ok" if row["speedup"] >= floor else "REGRESSION"
        print(
            f"{status:>10}  {name}: speedup {row['speedup']:.1f}x "
            f"(baseline {reference['speedup']:.1f}x, floor {floor:.1f}x)"
        )
        if status != "ok":
            failures.append(name)
    if failures:
        print(f"\nperf regression in: {', '.join(failures)}")
        return 1
    print("\nno perf regressions")
    return 0


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small sizes (CI smoke)")
    parser.add_argument("--out", type=Path, help="write results JSON here")
    parser.add_argument("--check", type=Path, help="baseline JSON to compare against")
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="fail when a speedup falls below baseline/factor (default 2)",
    )
    args = parser.parse_args(argv)

    results = run_suite(args.quick)
    print()
    for line in render(results):
        print(line)

    if args.out:
        payload = {
            "meta": {
                "python": sys.version.split()[0],
                "cpu_count": os.cpu_count() or 1,
                "timestamp": datetime.now(timezone.utc).isoformat(
                    timespec="seconds"
                ),
                "quick": args.quick,
                "note": "speedups are machine-relative (same-run naive vs indexed); "
                "refresh with: PYTHONPATH=src python benchmarks/bench_indexing.py "
                "--out BENCH_indexing.json",
            },
            "results": results,
        }
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.out}")

    if args.check:
        print()
        return check_regression(results, args.check, args.factor)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
