"""Relational table substrate (paper §4, §6).

The paper's lookup transformations run against a database of relational
tables -- in the original system these are Excel ranges plus a few
hard-coded background-knowledge tables.  This package provides:

* :class:`~repro.tables.table.Table` -- an immutable in-memory table of
  string cells with candidate-key metadata,
* :class:`~repro.tables.catalog.Catalog` -- a named collection of tables
  with the value -> occurrence index used by reachability,
* :mod:`~repro.tables.keys` -- automatic candidate-key discovery,
* :mod:`~repro.tables.background` -- the standard data-type tables of §6
  (time, months, ordinals, weekdays, currencies, phone codes, states),
* :mod:`~repro.tables.io` -- a small CSV loader/dumper.
"""

from repro.tables.catalog import Catalog, Occurrence
from repro.tables.keys import discover_candidate_keys
from repro.tables.substring_index import SubstringIndex
from repro.tables.table import Table

__all__ = [
    "Catalog",
    "Occurrence",
    "SubstringIndex",
    "Table",
    "discover_candidate_keys",
]
