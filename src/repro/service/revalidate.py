"""Proactive program revalidation + webhook notify, driven by the changefeed.

The paper's learn-once/serve-many model assumes the catalog under a
learned program never moves; the registry made catalogs mutable at
runtime, and until now staleness was discovered *reactively* -- a
``/fill`` 409'd with :class:`~repro.exceptions.StaleProgramError` only
at resolve time.  :class:`Revalidator` subscribes to the registry's
:class:`~repro.service.changefeed.ChangeFeed` and, on every catalog
transition, walks the attached :class:`ProgramStore` for artifacts
bound to that catalog and settles each into one of three outcomes:

``rebound``
    The program's required tables only grew (empty
    :func:`~repro.engine.compile.table_drift`): the artifact's recorded
    provenance is rewritten in place against the new snapshot, so even
    a *destructive* later change is diffed against data the program
    actually still works on.

``relearned``
    The program no longer fits (non-empty drift) but the learn examples
    persisted in the artifact still do: the service re-synthesizes from
    those examples against the new snapshot and rewrites the artifact
    in place -- same ``name@version`` ref, fresh program.

``stale``
    Neither applies (or no examples were recorded -- pre-migration
    artifacts): the artifact is marked stale with the exact per-table
    diff, so listings explain the coming 409 instead of springing it.

Processing happens on one daemon thread fed by a queue -- the mutation
path only enqueues and never blocks.  :class:`WebhookNotifier` is the
outbound half: registered URLs receive every feed event as a JSON POST,
retried with capped exponential backoff, with delivery counters in
``/stats``; failures never block or fail a mutation.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from collections import deque
from typing import Any, Dict, List, Optional

from repro.exceptions import ReproError

__all__ = ["Revalidator", "WebhookNotifier"]


class Revalidator:
    """Walks stored artifacts after each catalog transition (off-thread)."""

    def __init__(self, service: Any) -> None:
        self.service = service
        self._cv = threading.Condition()
        self._queue: deque = deque()
        self._busy = False
        self._closed = False
        self._thread: Optional[threading.Thread] = None
        self._events_seen = 0
        self._processed = 0
        self._rebound = 0
        self._relearned = 0
        self._stale = 0
        self._errors = 0
        self._last_seq: Dict[str, int] = {}

    # -- feed listener (mutating thread: enqueue only, never block) -----
    def on_event(self, event: Dict[str, Any], catalog: Any) -> None:
        if self.service.store is None:
            return
        with self._cv:
            if self._closed:
                return
            self._events_seen += 1
            self._queue.append(dict(event))
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, name="repro-revalidator", daemon=True
                )
                self._thread.start()
            self._cv.notify_all()

    # -- worker ---------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._closed:
                    self._cv.wait()
                if not self._queue:
                    return  # closed and drained
                event = self._queue.popleft()
                self._busy = True
            try:
                self._process(event)
            except Exception:  # noqa: BLE001 -- never kill the worker
                with self._cv:
                    self._errors += 1
            finally:
                with self._cv:
                    self._busy = False
                    name = event.get("catalog")
                    seq = event.get("seq", 0)
                    if isinstance(name, str):
                        self._last_seq[name] = max(
                            self._last_seq.get(name, 0), int(seq)
                        )
                    self._processed += 1
                    self._cv.notify_all()

    def _process(self, event: Dict[str, Any]) -> None:
        from repro.engine.compile import table_drift

        service = self.service
        store = service.store
        if store is None:
            return
        name = event["catalog"]
        # Revalidate against the *current* snapshot, not the event's:
        # if the catalog moved again while this event sat in the queue,
        # the walk below is idempotent and the later event re-runs it.
        snapshot = service.registry.get(name)
        fingerprint = snapshot.fingerprint()
        for prog_name in store.names():
            for version in store.versions(prog_name):
                try:
                    stored = store.get(prog_name, version)
                except ReproError:
                    continue
                info = stored.catalog_info
                if not info or info.get("name") != name:
                    continue
                if info.get("fingerprint") == fingerprint:
                    continue
                drift = table_drift(info.get("tables", {}), snapshot)
                if not drift:
                    self._rebind(stored, name, snapshot)
                    continue
                if not self._relearn(stored, name, snapshot):
                    store.amend(
                        prog_name,
                        version,
                        stale={
                            "fingerprint": fingerprint,
                            "changes": list(drift),
                        },
                    )
                    with self._cv:
                        self._stale += 1

    def _rebind(self, stored: Any, name: str, snapshot: Any) -> None:
        """Grow-only drift: rewrite provenance in place (``rebound``)."""
        program = stored.program(catalog=snapshot)
        new_info = self.service._catalog_provenance(program, name, snapshot)
        self.service.store.amend(
            stored.name, stored.version, catalog_info=new_info, stale=None
        )
        with self._cv:
            self._rebound += 1

    def _relearn(self, stored: Any, name: str, snapshot: Any) -> bool:
        """Re-synthesize from persisted examples (``relearned``).

        Returns False when no examples were recorded (pre-migration
        artifact) or the examples no longer admit a program.
        """
        examples = stored.examples
        if not examples:
            return False
        try:
            engine = self.service.engine_for(name)
            result = engine.synthesize(list(examples), k=1)
            program = result.program
        except ReproError:
            return False
        new_info = self.service._catalog_provenance(program, name, snapshot)
        self.service.store.amend(
            stored.name,
            stored.version,
            program=program,
            catalog_info=new_info,
            stale=None,
        )
        with self._cv:
            self._relearned += 1
        return True

    # -- introspection --------------------------------------------------
    def wait_idle(self, timeout: float = 30.0) -> bool:
        """Block until the queue drains (tests/benchmarks); False on
        timeout."""
        deadline = time.monotonic() + timeout
        with self._cv:
            while self._queue or self._busy:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cv.wait(remaining)
        return True

    def stats(self) -> Dict[str, Any]:
        feed = self.service.registry.feed
        with self._cv:
            last_seq = dict(self._last_seq)
            entry = {
                "enabled": True,
                "events": self._events_seen,
                "processed": self._processed,
                "rebound": self._rebound,
                "relearned": self._relearned,
                "stale": self._stale,
                "errors": self._errors,
                "queued": len(self._queue),
            }
        # Feed lag: how far behind the head the walker is, summed over
        # catalogs it has seen events for.
        entry["lag"] = sum(
            max(0, feed.head(name) - seq) for name, seq in last_seq.items()
        )
        entry["last_seq"] = last_seq
        return entry

    def close(self) -> None:
        with self._cv:
            self._closed = True
            self._cv.notify_all()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=10.0)


class WebhookNotifier:
    """POSTs every feed event to registered URLs, off the mutation path.

    Delivery runs on one daemon thread with capped exponential backoff
    (``RETRIES`` attempts, ``BACKOFF_BASE * 2^attempt`` seconds capped
    at ``BACKOFF_CAP``); a URL that keeps failing counts into
    ``failed`` and the event is dropped -- external notify is
    best-effort by contract, and the durable changefeed remains the
    source of truth a consumer can re-sync from (``GET
    /catalogs/<name>/changes``).
    """

    RETRIES = 3
    BACKOFF_BASE = 0.1
    BACKOFF_CAP = 2.0
    TIMEOUT = 5.0

    def __init__(self) -> None:
        self._cv = threading.Condition()
        self._urls: List[str] = []
        self._queue: deque = deque()
        self._busy = False
        self._closed = False
        self._thread: Optional[threading.Thread] = None
        self._delivered = 0
        self._failed = 0
        self._retries = 0

    def add(self, url: str) -> None:
        with self._cv:
            if url not in self._urls:
                self._urls.append(url)

    def urls(self) -> List[str]:
        with self._cv:
            return list(self._urls)

    # -- feed listener (enqueue only) -----------------------------------
    def on_event(self, event: Dict[str, Any], catalog: Any) -> None:
        with self._cv:
            if self._closed or not self._urls:
                return
            self._queue.append((dict(event), list(self._urls)))
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, name="repro-webhooks", daemon=True
                )
                self._thread.start()
            self._cv.notify_all()

    def _run(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._closed:
                    self._cv.wait()
                if not self._queue:
                    return
                event, urls = self._queue.popleft()
                self._busy = True
            try:
                body = json.dumps(event, ensure_ascii=False).encode("utf-8")
                for url in urls:
                    self._deliver(url, body)
            finally:
                with self._cv:
                    self._busy = False
                    self._cv.notify_all()

    def _deliver(self, url: str, body: bytes) -> None:
        for attempt in range(self.RETRIES):
            request = urllib.request.Request(
                url,
                data=body,
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            try:
                with urllib.request.urlopen(request, timeout=self.TIMEOUT):
                    pass
                with self._cv:
                    self._delivered += 1
                return
            except (urllib.error.URLError, OSError, ValueError):
                with self._cv:
                    if self._closed:
                        return
                    if attempt + 1 < self.RETRIES:
                        self._retries += 1
            if attempt + 1 < self.RETRIES:
                time.sleep(
                    min(self.BACKOFF_CAP, self.BACKOFF_BASE * (2 ** attempt))
                )
        with self._cv:
            self._failed += 1

    # -- introspection --------------------------------------------------
    def wait_idle(self, timeout: float = 30.0) -> bool:
        deadline = time.monotonic() + timeout
        with self._cv:
            while self._queue or self._busy:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cv.wait(remaining)
        return True

    def stats(self) -> Dict[str, Any]:
        with self._cv:
            return {
                "urls": len(self._urls),
                "delivered": self._delivered,
                "failed": self._failed,
                "retries": self._retries,
                "queued": len(self._queue),
            }

    def close(self) -> None:
        with self._cv:
            self._closed = True
            self._cv.notify_all()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=10.0)
