"""Ablations over the design choices DESIGN.md calls out.

Not figures from the paper -- these quantify why its design decisions
matter, using the same 50-benchmark workload:

* **ranking off** (constants free): how many benchmarks still converge in
  <= 3 examples without the Occam/generalization preferences of §4.4/§5.4;
* **relaxed reachability off** (§5.3): semantic benchmarks that need
  substring-derived keys stop being solvable at all;
* **depth bound k**: reachability depth vs solvability of the chained
  Example 3 lookup;
* **TokenSeq length**: structure growth when positions may use 2-token
  sequences.
"""

from __future__ import annotations

import pytest

from conftest import record_table
from repro.benchsuite import all_benchmarks, examples_needed, get_benchmark
from repro.config import SynthesisConfig

# A representative slice (keeps the ablation matrix fast: every class of
# task -- pure lookup, join, concat-key, substring-key, datatype, syntactic).
SAMPLE = [
    "ex2-customer-price",
    "ex5-bike-price",
    "ex6-company-codes",
    "ex8-date-format",
    "sku-markup",
    "name-swap",
    "quarter-months",
    "street-abbrev",
]


def test_ablation_ranking_off(benchmark):
    """Zeroing the constant penalties collapses ranking to 'anything goes'."""

    def run():
        config = SynthesisConfig().with_weights(
            const_atom_base=0.0, const_atom_per_char=0.0, const_predicate=0.0
        )
        outcomes = []
        for name in SAMPLE:
            result = examples_needed(get_benchmark(name), config=config)
            outcomes.append((name, result))
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'benchmark':28s} {'default':>8} {'no-ranking':>11}"]
    degraded = 0
    for name, result in outcomes:
        base = examples_needed(get_benchmark(name))
        shown = str(result.examples_used) if result.converged else "FAIL"
        lines.append(f"{name:28s} {base.examples_used:>8} {shown:>11}")
        if (not result.converged) or result.examples_used > base.examples_used:
            degraded += 1
    lines.append("-" * 49)
    lines.append(f"{degraded}/{len(outcomes)} benchmarks degraded without ranking")
    record_table("Ablation -- ranking disabled (constants free)", lines)
    assert degraded >= len(outcomes) // 2


def test_ablation_relaxed_reachability_off(benchmark):
    """Without §5.3's substring triggers, substring-keyed tasks are unsolvable."""

    def run():
        config = SynthesisConfig(relaxed_reachability=False)
        outcomes = []
        for name in ("ex5-bike-price", "ex6-company-codes", "sku-markup",
                     "quarter-months", "ex8-date-format"):
            result = examples_needed(get_benchmark(name), config=config)
            outcomes.append((name, result.converged, result.examples_used))
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'benchmark':28s} {'converged':>10}"]
    failures = 0
    for name, converged, used in outcomes:
        lines.append(f"{name:28s} {str(converged):>10}")
        if not converged:
            failures += 1
    lines.append("-" * 40)
    lines.append(f"{failures}/{len(outcomes)} substring-keyed tasks become unsolvable")
    record_table("Ablation -- relaxed reachability disabled", lines)
    assert failures >= 3


def test_ablation_depth_bound(benchmark):
    """Example 3's chain needs k >= chain length (paper sets k = #tables).

    Run in the pure lookup language: Lu could sidestep a shallow bound
    with syntactic shortcuts, which is exactly what this ablation is not
    about.
    """

    def run():
        bench = get_benchmark("ex3-chain-lookup")
        outcomes = []
        for depth in (1, 2, 3, 4):
            config = SynthesisConfig(depth_bound=depth)
            result = examples_needed(bench, language="lookup", config=config)
            outcomes.append((depth, result.converged))
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'depth bound k':>13} {'solves chain':>13}"]
    for depth, converged in outcomes:
        lines.append(f"{depth:13d} {str(converged):>13}")
    record_table("Ablation -- reachability depth bound k (Example 3 chain)", lines)
    assert not outcomes[0][1]  # k = 1 cannot span a 3-step chain
    assert outcomes[-1][1]


def test_ablation_tokenseq_length(benchmark):
    """Longer TokenSeqs enrich position sets: larger structures, same result."""

    def run():
        bench = get_benchmark("ex8-date-format")
        sizes = []
        for seq_len in (1, 2):
            config = SynthesisConfig(max_tokenseq_len=seq_len)
            session = bench.session(config=config)
            inputs, output = bench.rows[0]
            session.add_example(inputs, output)
            program = session.learn()
            correct = all(
                program.run(row_inputs) == row_output
                for row_inputs, row_output in bench.rows
            )
            sizes.append((seq_len, session.structure_size(), correct))
        return sizes

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'max TokenSeq len':>16} {'structure size':>15} {'one-shot?':>10}"]
    for seq_len, size, correct in sizes:
        lines.append(f"{seq_len:16d} {size:15d} {str(correct):>10}")
    record_table("Ablation -- TokenSeq length vs structure size", lines)
    assert sizes[1][1] > sizes[0][1]


def test_ablation_table_scaling(benchmark):
    """Learning time grows politely with table size (§9 discussion)."""
    import time

    from repro.engine.session import SynthesisSession
    from repro.tables import Catalog, Table

    def run():
        timings = []
        for rows in (10, 50, 200):
            table = Table(
                "Big",
                ["K", "V"],
                [(f"key{i:04d}", f"val{i:04d}") for i in range(rows)],
                keys=[("K",)],
            )
            session = SynthesisSession(Catalog([table]))
            started = time.perf_counter()
            session.add_example(("key0007",), "val0007")
            session.learn()
            timings.append((rows, time.perf_counter() - started))
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'table rows':>10} {'seconds':>9}"]
    for rows, seconds in timings:
        lines.append(f"{rows:10d} {seconds:9.3f}")
    record_table("Ablation -- catalog size scaling (single lookup)", lines)
    assert timings[-1][1] < 30.0
