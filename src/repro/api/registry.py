"""Pluggable language backends (the engine's dispatch layer).

A *backend* packages one transformation language for the engine: its
GenerateStr/Intersect pair (via :meth:`adapter`), its ranking-based
extraction, and its version-space measures.  The three paper languages --
Ls (:class:`repro.syntactic.language.SyntacticLanguage`), Lt
(:class:`repro.lookup.language.LookupLanguage`) and Lu
(:class:`repro.semantic.language.SemanticLanguage`) -- register themselves
here; external code can add more with :func:`register_backend`::

    @register_backend("mylang", "Lx")
    class MyLanguage:
        name = "Lx"
        requires_catalog = False
        def __init__(self, config): ...
        def adapter(self): ...
        ...

The engine and the session resolve names through :func:`create_backend`
instead of hard-coding an ``if/elif`` over the built-in languages.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    Optional,
    Protocol,
    Tuple,
    Type,
    runtime_checkable,
)

from repro.config import DEFAULT_CONFIG, SynthesisConfig
from repro.exceptions import UnknownBackendError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.base import Expression
    from repro.core.formalism import LanguageAdapter
    from repro.tables.catalog import Catalog


@runtime_checkable
class LanguageBackend(Protocol):
    """What a pluggable transformation language must provide.

    ``name`` is the paper-style short name ("Ls", "Lt", "Lu", ...);
    ``requires_catalog`` says whether the constructor takes a
    :class:`~repro.tables.catalog.Catalog` as its first argument.
    Backends may additionally offer ``top_programs(structure, k)``
    returning ranked ``(cost, expression)`` pairs; the engine uses it for
    top-k results when present.
    """

    name: str
    requires_catalog: bool

    def adapter(self) -> "LanguageAdapter":
        """The GenerateStr/Intersect bundle driving §3.1's Synthesize."""
        ...

    def best_program(self, structure) -> "Optional[Expression]":
        """The top-ranked consistent expression, or ``None`` when empty."""
        ...

    def enumerate_programs(self, structure, limit: int = 1000) -> "Iterator[Expression]":
        """Up to ``limit`` concrete consistent expressions."""
        ...

    def count_expressions(self, structure) -> int:
        """Number of consistent expressions (Figure 11(a))."""
        ...

    def structure_size(self, structure) -> int:
        """Terminal-symbol size of the version-space structure (Figure 11(b))."""
        ...


_BACKENDS: Dict[str, Type] = {}
_ALIASES: Dict[str, str] = {}


def register_backend(name: str, *aliases: str) -> Callable[[Type], Type]:
    """Class decorator registering a backend under ``name`` (plus aliases).

    >>> @register_backend("semantic", "Lu")      # doctest: +SKIP
    ... class SemanticLanguage: ...
    """

    def wrap(cls: Type) -> Type:
        if name in _BACKENDS:
            raise ValueError(f"backend {name!r} is already registered")
        _BACKENDS[name] = cls
        for alias in (name,) + aliases:
            key = alias.casefold()
            if key in _ALIASES and _ALIASES[key] != name:
                raise ValueError(
                    f"alias {alias!r} already names backend {_ALIASES[key]!r}"
                )
            _ALIASES[key] = name
        return cls

    return wrap


def _ensure_builtin_backends() -> None:
    """Import the built-in language modules so they self-register."""
    if "semantic" in _BACKENDS:
        return
    from repro.lookup import language as _lookup  # noqa: F401
    from repro.semantic import language as _semantic  # noqa: F401
    from repro.syntactic import language as _syntactic  # noqa: F401


def available_backends() -> Tuple[str, ...]:
    """Canonical names of every registered backend, sorted."""
    _ensure_builtin_backends()
    return tuple(sorted(_BACKENDS))


def resolve_backend_name(name: str) -> str:
    """Canonical backend name for ``name`` (accepts aliases like ``"Lu"``).

    Raises:
        UnknownBackendError: when no backend answers to ``name``.
    """
    _ensure_builtin_backends()
    try:
        return _ALIASES[name.casefold()]
    except (KeyError, AttributeError):
        raise UnknownBackendError(str(name), available_backends()) from None


def backend_class(name: str) -> Type:
    """The registered class for ``name`` (canonical or alias)."""
    return _BACKENDS[resolve_backend_name(name)]


def create_backend(
    name: str,
    catalog: "Optional[Catalog]" = None,
    config: SynthesisConfig = DEFAULT_CONFIG,
) -> LanguageBackend:
    """Instantiate the backend registered under ``name``.

    Catalog-backed languages receive ``catalog`` (an empty catalog when
    ``None``); purely syntactic ones are constructed from ``config`` alone.
    """
    cls = backend_class(name)
    if getattr(cls, "requires_catalog", True):
        if catalog is None:
            from repro.tables.catalog import Catalog

            catalog = Catalog([])
        return cls(catalog, config)
    return cls(config)
