"""CatalogRegistry: named snapshots, copy-on-write updates, concurrency.

The registry's one invariant: a reader holding a snapshot (directly or
through a service engine) computes against exactly that snapshot's
tables, no matter how many updates land concurrently -- either the old
or the new fingerprint, never a torn mix.  Pinned here alongside the
basics (register/get/replace, lazy root loading, typed errors) and the
acceptance property that learning through a registry catalog is
byte-identical to a direct ``Synthesizer`` over the same tables.
"""

import threading

import pytest

from repro.api.engine import Synthesizer
from repro.benchsuite import all_benchmarks
from repro.exceptions import (
    CatalogRegistryError,
    DuplicateTableError,
    FrozenCatalogError,
    UnknownCatalogError,
    UnknownTableError,
)
from repro.service.registry import CatalogRegistry
from repro.service.service import SynthesisService
from repro.tables.catalog import Catalog
from repro.tables.io import save_table_csv
from repro.tables.table import Table

ROWS = [
    ("c1", "Microsoft"),
    ("c2", "Google"),
    ("c3", "Apple"),
    ("c4", "Facebook"),
    ("c5", "IBM"),
    ("c6", "Xerox"),
]


def comp_table(rows=None):
    return Table("Comp", ["Id", "Name"], rows or ROWS, keys=[("Id",)])


def canonical(result):
    """``SynthesisResult.to_dict`` minus wall-clock noise -- the byte-
    identity comparand (programs, scores, ranks, metrics)."""
    payload = result.to_dict()
    payload.pop("elapsed_seconds", None)
    payload.pop("phase_seconds", None)
    return payload


class TestBasics:
    def test_register_get_roundtrip(self):
        registry = CatalogRegistry()
        stored = registry.register("demo", [comp_table()])
        assert registry.get("demo") is stored
        assert stored.frozen
        assert registry.names() == ["demo"]
        assert "demo" in registry and "nope" not in registry

    def test_register_freezes_caller_catalog(self):
        registry = CatalogRegistry()
        catalog = Catalog([comp_table()])
        registry.register("demo", catalog)
        with pytest.raises(FrozenCatalogError):
            catalog.add(Table("X", ["a"], [("b",)]))

    def test_register_replaces(self):
        registry = CatalogRegistry()
        registry.register("demo", [comp_table()])
        registry.register("demo", [Table("Other", ["a"], [("x",)])])
        assert registry.get("demo").table_names() == ["Other"]

    def test_unknown_catalog_names_available(self):
        registry = CatalogRegistry()
        registry.register("demo", [comp_table()])
        with pytest.raises(UnknownCatalogError) as excinfo:
            registry.get("nope")
        assert excinfo.value.name == "nope"
        assert excinfo.value.available == ("demo",)

    def test_bad_names_rejected(self):
        registry = CatalogRegistry()
        for bad in ("", "a/b", "..", "-x", "a" * 65):
            with pytest.raises(CatalogRegistryError):
                registry.register(bad, [comp_table()])

    def test_describe(self):
        registry = CatalogRegistry()
        registry.register("demo", [comp_table()])
        info = registry.describe("demo")
        assert info["name"] == "demo"
        assert info["entries"] == len(ROWS) * 2
        assert info["tables"][0]["name"] == "Comp"
        assert info["tables"][0]["columns"] == ["Id", "Name"]
        assert info["tables"][0]["num_rows"] == len(ROWS)
        assert info["fingerprint"] == registry.get("demo").fingerprint()


class TestUpdates:
    def test_add_table_creates_catalog_by_default(self):
        registry = CatalogRegistry()
        registry.add_table("fresh", comp_table())
        assert registry.get("fresh").table_names() == ["Comp"]

    def test_add_table_create_false_requires_catalog(self):
        registry = CatalogRegistry()
        with pytest.raises(UnknownCatalogError):
            registry.add_table("fresh", comp_table(), create=False)

    def test_duplicate_table_rejected_with_catalog_name(self):
        registry = CatalogRegistry()
        registry.register("demo", [comp_table()])
        with pytest.raises(DuplicateTableError) as excinfo:
            registry.add_table("demo", comp_table())
        assert excinfo.value.catalog == "demo"
        assert excinfo.value.table == "Comp"

    def test_append_rows_unknown_table(self):
        registry = CatalogRegistry()
        registry.register("demo", [comp_table()])
        with pytest.raises(UnknownTableError):
            registry.append_rows("demo", "Nope", [("a", "b")])

    def test_old_snapshot_survives_update(self):
        registry = CatalogRegistry()
        registry.register("demo", [comp_table()])
        old = registry.get("demo")
        old_fingerprint = old.fingerprint()
        registry.append_rows("demo", "Comp", [("c7", "Intel")])
        new = registry.get("demo")
        assert new is not old
        assert old.table("Comp").num_rows == len(ROWS)
        assert old.fingerprint() == old_fingerprint
        assert new.table("Comp").num_rows == len(ROWS) + 1
        assert new.fingerprint() != old_fingerprint


class TestRootLoading:
    def test_lazy_csv_loading(self, tmp_path):
        directory = tmp_path / "geo"
        directory.mkdir()
        save_table_csv(
            Table("Caps", ["Country", "Capital"], [("France", "Paris")]),
            directory / "Caps.csv",
        )
        registry = CatalogRegistry(root=tmp_path)
        assert registry.names() == ["geo"]
        assert registry.loaded_names() == []
        catalog = registry.get("geo")
        assert catalog.table("Caps").lookup("Capital", {"Country": "France"}) == "Paris"
        assert registry.loaded_names() == ["geo"]

    def test_tables_load_in_sorted_file_order(self, tmp_path):
        directory = tmp_path / "multi"
        directory.mkdir()
        save_table_csv(Table("B", ["x"], [("1",)]), directory / "b.csv")
        save_table_csv(Table("A", ["y"], [("2",)]), directory / "a.csv")
        registry = CatalogRegistry(root=tmp_path)
        # file stems become table names, sorted order = catalog order
        assert registry.get("multi").table_names() == ["a", "b"]

    def test_registered_names_merge_with_root(self, tmp_path):
        (tmp_path / "ondisk").mkdir()
        save_table_csv(
            Table("T", ["a"], [("x",)]), tmp_path / "ondisk" / "T.csv"
        )
        registry = CatalogRegistry(root=tmp_path)
        registry.register("inmem", [comp_table()])
        assert registry.names() == ["inmem", "ondisk"]


class TestServiceIntegration:
    def make_service(self):
        registry = CatalogRegistry()
        registry.register("left", [comp_table()])
        registry.register(
            "right",
            [Table("Caps", ["Country", "Capital"],
                   [("France", "Paris"), ("Japan", "Tokyo"), ("Chile", "Santiago")],
                   keys=[("Country",)])],
        )
        return SynthesisService(registry=registry, default_catalog="left")

    def test_learn_fill_per_catalog_matches_direct_synthesizer(self):
        service = self.make_service()
        for name, task, fill_rows in (
            ("left", [(("c4 c3 c1",), "Facebook Apple Microsoft")], [["c2 c5 c6"]]),
            ("right", [(("France",), "Paris")], [["Chile"]]),
        ):
            reply = service.learn(task, catalog=name)
            direct = Synthesizer(
                Catalog(service.registry.get(name).tables())
            ).synthesize(task, k=1)
            assert canonical(reply.result) == canonical(direct)
            assert service.fill(
                reply.result.program.to_dict(), fill_rows, catalog=name
            ) == direct.program.fill(fill_rows)

    def test_concurrent_learns_never_see_torn_catalogs(self):
        """Satellite regression: while the registry swaps snapshots,
        every learn reports a published fingerprint and its result is
        byte-identical to a fresh Synthesizer over that same snapshot --
        old or new, never a mix."""
        registry = CatalogRegistry()
        registry.register("demo", [comp_table()])
        service = SynthesisService(registry=registry, default_catalog="demo")
        published = {registry.get("demo").fingerprint(): registry.get("demo")}
        publish_lock = threading.Lock()
        stop = threading.Event()
        errors = []
        observations = []

        def writer():
            for step in range(8):
                snapshot = registry.append_rows(
                    "demo", "Comp", [(f"w{step}", f"Writer{step}")]
                )
                with publish_lock:
                    published[snapshot.fingerprint()] = snapshot
            stop.set()

        def reader(seed):
            index = 0
            while not stop.is_set() or index == 0:
                index += 1
                ids = [f"c{(seed + index + offset) % 6 + 1}" for offset in range(2)]
                task = [
                    ((" ".join(ids),), " ".join(
                        dict(ROWS)[one] for one in ids
                    ))
                ]
                try:
                    reply = service.learn(task, k=1)
                    with publish_lock:
                        snapshot = published.get(reply.catalog_fingerprint)
                    if snapshot is None:
                        errors.append(
                            f"unpublished fingerprint {reply.catalog_fingerprint}"
                        )
                        continue
                    observations.append((task[0], reply, snapshot))
                except Exception as error:  # noqa: BLE001 -- surface in main thread
                    errors.append(repr(error))

        threads = [threading.Thread(target=reader, args=(n,)) for n in range(4)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
        assert observations
        # Each observed result must equal a fresh single-catalog
        # Synthesizer over the snapshot its fingerprint names.
        verified = set()
        for (inputs, output), reply, snapshot in observations:
            key = (inputs, output, reply.catalog_fingerprint)
            if key in verified:
                continue
            verified.add(key)
            direct = Synthesizer(Catalog(snapshot.tables())).synthesize(
                [(inputs, output)], k=1
            )
            assert canonical(reply.result) == canonical(direct)

    def test_parallel_appends_learns_fills_across_two_catalogs(self):
        """Satellite: parallel appends + learns + fills over two named
        catalogs end byte-identical to fresh single-catalog engines."""
        service = self.make_service()
        errors = []

        def left_worker():
            try:
                for step in range(4):
                    service.registry.append_rows(
                        "left", "Comp", [(f"L{step}", f"Left{step}")]
                    )
                    reply = service.learn(
                        [(("c1 c2",), "Microsoft Google")], catalog="left"
                    )
                    outputs = service.fill(
                        reply.result.program.to_dict(),
                        [[f"L{step} c3"]],
                        catalog="left",
                    )
                    assert outputs == [f"Left{step} Apple"], outputs
            except Exception as error:  # noqa: BLE001
                errors.append(repr(error))

        def right_worker():
            try:
                for step in range(4):
                    service.registry.append_rows(
                        "right", "Caps", [(f"Country{step}", f"City{step}")]
                    )
                    reply = service.learn(
                        [(("France",), "Paris")], catalog="right"
                    )
                    outputs = service.fill(
                        reply.result.program.to_dict(),
                        [[f"Country{step}"]],
                        catalog="right",
                    )
                    assert outputs == [f"City{step}"], outputs
            except Exception as error:  # noqa: BLE001
                errors.append(repr(error))

        threads = [
            threading.Thread(target=left_worker),
            threading.Thread(target=right_worker),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
        # Both catalogs converged; final learns equal fresh engines.
        for name, task in (
            ("left", [(("c1 c2",), "Microsoft Google")]),
            ("right", [(("France",), "Paris")]),
        ):
            reply = service.learn(task, catalog=name)
            direct = Synthesizer(
                Catalog(service.registry.get(name).tables())
            ).synthesize(task, k=1)
            assert canonical(reply.result) == canonical(direct)


class TestBenchsuiteRegistryPinning:
    def test_registry_serving_is_byte_identical_for_every_benchmark(self):
        """Acceptance: learn/fill through a named registry catalog ==
        direct Synthesizer over the same tables, including after an
        append served from the *new* snapshot."""
        registry = CatalogRegistry()
        service = SynthesisService(registry=registry)
        for benchmark in all_benchmarks():
            if not benchmark.tables:
                continue  # table-free problems have nothing to register
            name = f"bench-{benchmark.ident}"
            registry.register(name, benchmark.catalog())
            task = [benchmark.rows[0]]
            reply = service.learn(task, catalog=name)
            direct = Synthesizer(benchmark.catalog()).synthesize(task, k=1)
            assert canonical(reply.result) == canonical(direct), benchmark.name
            rows = [list(inputs) for inputs, _ in benchmark.rows]
            assert service.fill(
                reply.result.program.to_dict(), rows, catalog=name
            ) == direct.program.fill(rows), benchmark.name

            # Append a fresh row, then pin the *new* snapshot's serving.
            target = benchmark.tables[0]
            fresh_row = tuple(
                f"zz-{benchmark.ident}-{column}" for column in target.columns
            )
            registry.append_rows(name, target.name, [fresh_row])
            after = service.learn(task, catalog=name)
            assert after.cache_status == "miss"  # new fingerprint, new key
            extended_tables = registry.get(name).tables()
            direct_after = Synthesizer(Catalog(extended_tables)).synthesize(
                task, k=1
            )
            assert canonical(after.result) == canonical(direct_after), benchmark.name
            assert service.fill(
                after.result.program.to_dict(), rows, catalog=name
            ) == direct_after.program.fill(rows), benchmark.name
