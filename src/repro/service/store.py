"""Persistent program store: named, versioned ``Program.to_dict`` artifacts.

The paper's interaction loop learns a program once and applies it many
times; a production service must keep learned programs alive *between*
requests and across restarts.  :class:`ProgramStore` persists each
program under a user-chosen name as the same JSON artifact ``repro learn
--save`` writes (``Program.to_dict()`` plus a ``store`` metadata block),
one file per version::

    <root>/
        phone-format/
            v0001.json
            v0002.json
        expand-codes/
            v0001.json

Every artifact file is independently loadable with ``repro fill
--program <file>`` -- the store adds naming, versioning and listing on
top, it does not invent a new format.  All operations are thread-safe
(one re-entrant lock around directory reads/writes) and writes are
atomic (temp file + ``os.replace``), so a serving process never observes
a half-written artifact.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.engine.program import Program
from repro.exceptions import ProgramStoreError, SerializationError, UnknownProgramError
from repro.tables.catalog import Catalog

#: Program names must be safe as directory names on every platform.
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")
_VERSION_PATTERN = re.compile(r"^v(\d{4,})\.json$")


def parse_program_ref(ref: str) -> Tuple[str, Optional[int]]:
    """Split ``"name"`` / ``"name@7"`` into ``(name, version-or-None)``."""
    name, sep, version = ref.partition("@")
    if not sep:
        return ref, None
    try:
        number = int(version)
    except ValueError:
        raise ProgramStoreError(
            f"bad program reference {ref!r}: version must be an integer"
        ) from None
    return name, number


@dataclass(frozen=True)
class StoredProgram:
    """One persisted program version: its identity, artifact and metadata."""

    name: str
    version: int
    path: Path
    payload: Dict[str, Any] = field(repr=False)

    @property
    def metadata(self) -> Dict[str, Any]:
        return dict(self.payload.get("store", {}).get("metadata", {}))

    @property
    def saved_at(self) -> Optional[float]:
        return self.payload.get("store", {}).get("saved_at")

    @property
    def catalog_info(self) -> Optional[Dict[str, Any]]:
        """The catalog provenance block recorded at save time (or None).

        ``{"name": ..., "fingerprint": ..., "tables": {table: {
        "data_fingerprint", "num_rows", "columns"}}}`` -- the tables
        block covers the program's *required* tables only, which is what
        the serving layer's staleness check needs.
        """
        info = self.payload.get("store", {}).get("catalog")
        return dict(info) if isinstance(info, dict) else None

    @property
    def examples(self) -> Optional[List[Tuple[Tuple[str, ...], str]]]:
        """The learn examples recorded at save time, or ``None``.

        Lazy migration shim: artifacts written before examples were
        persisted (or with a malformed block) simply report ``None`` --
        they load and serve fine, re-learning is just unavailable for
        them.
        """
        raw = self.payload.get("store", {}).get("examples")
        if not isinstance(raw, list) or not raw:
            return None
        examples: List[Tuple[Tuple[str, ...], str]] = []
        for entry in raw:
            if (
                not isinstance(entry, (list, tuple))
                or len(entry) != 2
                or not isinstance(entry[0], (list, tuple))
                or not all(isinstance(cell, str) for cell in entry[0])
                or not isinstance(entry[1], str)
            ):
                return None
            examples.append((tuple(entry[0]), entry[1]))
        return examples

    @property
    def stale(self) -> Optional[Dict[str, Any]]:
        """The staleness marker set by revalidation, or ``None``.

        ``{"fingerprint": <catalog fingerprint the drift was seen
        against>, "changes": [...]}`` -- informational; the serving
        layer recomputes drift live on resolve."""
        marker = self.payload.get("store", {}).get("stale")
        return dict(marker) if isinstance(marker, dict) else None

    @property
    def language(self) -> Optional[str]:
        return self.payload.get("language")

    @property
    def source(self) -> Optional[str]:
        return self.payload.get("source")

    def program(self, catalog: Optional[Catalog] = None) -> Program:
        """Rebuild the runnable program against ``catalog``."""
        return Program.from_dict(self.payload, catalog=catalog)

    def summary(self) -> Dict[str, Any]:
        """JSON-friendly listing entry (no expression payload)."""
        info = self.catalog_info
        return {
            "name": self.name,
            "version": self.version,
            "language": self.language,
            "num_inputs": self.payload.get("num_inputs"),
            "source": self.source,
            "saved_at": self.saved_at,
            "metadata": self.metadata,
            "catalog": None
            if info is None
            else {"name": info.get("name"), "fingerprint": info.get("fingerprint")},
            "stale": self.stale,
        }


class ProgramStore:
    """A directory of named, versioned program artifacts.

    >>> store = ProgramStore(tmp_path)                       # doctest: +SKIP
    >>> stored = store.save("expand", result.program)        # doctest: +SKIP
    >>> store.load("expand", catalog=catalog)                # doctest: +SKIP
    Program(semantic: ...)
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        # Cached program count for len() (stats endpoints poll it); our
        # own save/delete invalidate it immediately, and a short TTL
        # bounds staleness against *other* processes sharing the store
        # directory.  Listing/loads always read the disk.
        self._count_cache: Optional[Tuple[float, int]] = None

    # ------------------------------------------------------------------
    @staticmethod
    def check_name(name: str) -> str:
        """Validate a program name (raises :class:`ProgramStoreError`)."""
        if not _NAME_PATTERN.match(name):
            raise ProgramStoreError(
                f"bad program name {name!r}: use 1-64 characters from "
                "[A-Za-z0-9._-], starting with a letter or digit"
            )
        return name

    def _program_dir(self, name: str) -> Path:
        return self.root / self.check_name(name)

    @staticmethod
    def _version_of(path: Path) -> Optional[int]:
        match = _VERSION_PATTERN.match(path.name)
        return int(match.group(1)) if match else None

    def _versions_on_disk(self, name: str) -> List[Tuple[int, Path]]:
        directory = self._program_dir(name)
        if not directory.is_dir():
            return []
        found = []
        for path in directory.iterdir():
            version = self._version_of(path)
            if version is not None:
                found.append((version, path))
        return sorted(found)

    # ------------------------------------------------------------------
    @staticmethod
    def _encode_examples(examples: Optional[Any]) -> Optional[List[List[Any]]]:
        """JSON-friendly ``[[inputs...], output]`` pairs, or ``None``."""
        if not examples:
            return None
        return [
            [list(inputs), output] for inputs, output in examples
        ]

    def save(
        self,
        name: str,
        program: Program,
        metadata: Optional[Dict[str, Any]] = None,
        catalog_info: Optional[Dict[str, Any]] = None,
        examples: Optional[Any] = None,
    ) -> StoredProgram:
        """Persist ``program`` as the next version of ``name``.

        The artifact is ``program.to_dict()`` with a ``store`` block
        (name, version, wall-clock ``saved_at``, caller ``metadata``,
        optional ``catalog`` provenance -- see
        :attr:`StoredProgram.catalog_info` -- and the optional learn
        ``examples`` that produced the program) added;
        :meth:`Program.from_dict` ignores the extra key, so the file
        stays a plain program artifact.
        """
        payload = program.to_dict()
        encoded_examples = self._encode_examples(examples)
        with self._lock:
            versions = self._versions_on_disk(name)
            version = versions[-1][0] + 1 if versions else 1
            directory = self._program_dir(name)
            directory.mkdir(parents=True, exist_ok=True)
            # Claim the version file with a hard link (atomic and
            # exclusive across *processes* -- two `repro serve` instances
            # may share one store directory); on collision, retry the
            # next number.  Filesystems without hard links fall back to
            # os.replace, which keeps single-process semantics only.
            while True:
                payload["store"] = {
                    "name": name,
                    "version": version,
                    "saved_at": time.time(),
                    "metadata": dict(metadata or {}),
                }
                if catalog_info is not None:
                    payload["store"]["catalog"] = dict(catalog_info)
                if encoded_examples is not None:
                    payload["store"]["examples"] = encoded_examples
                text = json.dumps(payload, indent=2, ensure_ascii=False) + "\n"
                path = directory / f"v{version:04d}.json"
                handle = tempfile.NamedTemporaryFile(
                    "w",
                    encoding="utf-8",
                    dir=str(directory),
                    prefix=".tmp-",
                    suffix=".json",
                    delete=False,
                )
                try:
                    with handle:
                        handle.write(text)
                    try:
                        os.link(handle.name, path)
                        os.unlink(handle.name)
                        break
                    except FileExistsError:
                        os.unlink(handle.name)
                        version += 1  # claimed by another process; retry
                        continue
                    except OSError:
                        os.replace(handle.name, path)
                        break
                except BaseException:
                    try:
                        os.unlink(handle.name)
                    except OSError:
                        pass
                    raise
            self._count_cache = None
            return StoredProgram(name=name, version=version, path=path, payload=payload)

    def save_if_changed(
        self,
        name: str,
        program: Program,
        metadata: Optional[Dict[str, Any]] = None,
        catalog_info: Optional[Dict[str, Any]] = None,
        examples: Optional[Any] = None,
    ) -> StoredProgram:
        """Like :meth:`save`, but dedupe unchanged saves (atomically).

        Holds the store lock across the compare-and-save, so concurrent
        identical requests cannot each write a version.  The latest
        version is returned unchanged when it already holds an identical
        program payload and the caller's ``metadata`` is absent or
        identical (compared after a JSON round-trip, matching what disk
        storage does to it); new metadata on an unchanged program writes
        a new version -- metadata is versioned with its artifact.  The
        same rule applies to catalog provenance: an identical program
        re-learned against a *changed* catalog writes a new version, so
        the recorded provenance always describes tables the program was
        actually validated against.
        """
        with self._lock:
            payload = program.to_dict()
            try:
                latest = self.get(name)
            except ProgramStoreError:
                # Nothing stored yet (or the latest artifact is
                # unreadable -- then a fresh version is the useful move).
                latest = None
            if latest is not None:
                unchanged = {
                    key: value
                    for key, value in latest.payload.items()
                    if key != "store"
                } == payload
                normalized = (
                    None
                    if metadata is None
                    else json.loads(json.dumps(dict(metadata)))
                )
                normalized_info = (
                    None
                    if catalog_info is None
                    else json.loads(json.dumps(dict(catalog_info)))
                )
                encoded = self._encode_examples(examples)
                normalized_examples = (
                    None if encoded is None else json.loads(json.dumps(encoded))
                )
                stored_examples = latest.payload.get("store", {}).get("examples")
                if (
                    unchanged
                    and (normalized is None or normalized == latest.metadata)
                    and (
                        normalized_info is None
                        or normalized_info == latest.catalog_info
                    )
                    and (
                        normalized_examples is None
                        or normalized_examples == stored_examples
                    )
                ):
                    return latest
            return self.save(
                name,
                program,
                metadata=metadata,
                catalog_info=catalog_info,
                examples=examples,
            )

    _KEEP_STALE = object()  # amend(stale=...) sentinel: leave marker alone

    def amend(
        self,
        name: str,
        version: int,
        program: Optional[Program] = None,
        catalog_info: Optional[Dict[str, Any]] = None,
        stale: Any = _KEEP_STALE,
    ) -> StoredProgram:
        """Atomically rewrite one stored version **in place**.

        The revalidation subsystem uses this to keep old ``name@version``
        references serving after their catalog moved: rebinding updates
        the recorded ``catalog`` provenance (and optionally the program
        payload itself, after a re-learn) without minting a new version,
        so clients pinned to the old ref never see a 409.  Identity
        fields (name, version, ``saved_at``, metadata, examples) are
        preserved; ``stale`` set to a dict records a staleness marker,
        ``None`` clears it, and omitting it leaves it untouched.
        The rewrite is temp-file + ``os.replace`` atomic.
        """
        with self._lock:
            stored = self.get(name, version)
            payload = (
                program.to_dict() if program is not None else dict(stored.payload)
            )
            block = dict(stored.payload.get("store", {}))
            block["name"] = name
            block["version"] = version
            if catalog_info is not None:
                block["catalog"] = dict(catalog_info)
            if stale is not self._KEEP_STALE:
                if stale is None:
                    block.pop("stale", None)
                else:
                    block["stale"] = dict(stale)
            payload["store"] = block
            text = json.dumps(payload, indent=2, ensure_ascii=False) + "\n"
            directory = self._program_dir(name)
            handle = tempfile.NamedTemporaryFile(
                "w",
                encoding="utf-8",
                dir=str(directory),
                prefix=".tmp-",
                suffix=".json",
                delete=False,
            )
            try:
                with handle:
                    handle.write(text)
                os.replace(handle.name, stored.path)
            except BaseException:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
                raise
            return StoredProgram(
                name=name, version=version, path=stored.path, payload=payload
            )

    def _read_artifact(self, name: str, version: int, path: Path) -> StoredProgram:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise ProgramStoreError(
                f"unreadable artifact for {name!r} v{version}: {error}"
            ) from None
        return StoredProgram(name=name, version=version, path=path, payload=payload)

    def get(self, name: str, version: Optional[int] = None) -> StoredProgram:
        """The stored artifact for ``name`` (latest version by default)."""
        with self._lock:
            versions = self._versions_on_disk(name)
            if not versions:
                raise UnknownProgramError(name)
            if version is None:
                version, path = versions[-1]
            else:
                by_number = dict(versions)
                path = by_number.get(version)
                if path is None:
                    raise UnknownProgramError(name, version)
            return self._read_artifact(name, version, path)

    def load(
        self,
        name: str,
        version: Optional[int] = None,
        catalog: Optional[Catalog] = None,
    ) -> Program:
        """Rebuild the runnable program (latest version by default)."""
        stored = self.get(name, version)
        try:
            return stored.program(catalog=catalog)
        except SerializationError as error:
            raise ProgramStoreError(
                f"artifact for {name!r} v{stored.version} is not a valid "
                f"program: {error}"
            ) from None

    def versions(self, name: str) -> List[int]:
        """All stored version numbers for ``name``, ascending."""
        with self._lock:
            return [version for version, _ in self._versions_on_disk(name)]

    def names(self) -> List[str]:
        """All stored program names, sorted."""
        with self._lock:
            if not self.root.is_dir():
                return []
            return sorted(
                entry.name
                for entry in self.root.iterdir()
                if entry.is_dir()
                and _NAME_PATTERN.match(entry.name)
                and self._versions_on_disk(entry.name)
            )

    def list_programs(self) -> List[Dict[str, Any]]:
        """JSON-friendly listing: latest summary + version list per name.

        One directory scan per name (reused for both the version list
        and the latest artifact) -- the listing runs under the store
        lock, so it must not repeat work per program.
        """
        with self._lock:
            if not self.root.is_dir():
                return []
            listing = []
            for entry_dir in sorted(self.root.iterdir()):
                if not entry_dir.is_dir() or not _NAME_PATTERN.match(entry_dir.name):
                    continue
                versions = self._versions_on_disk(entry_dir.name)
                if not versions:
                    continue
                version, path = versions[-1]
                latest = self._read_artifact(entry_dir.name, version, path)
                entry = latest.summary()
                entry["versions"] = [number for number, _ in versions]
                listing.append(entry)
            return listing

    def delete(self, name: str, version: Optional[int] = None) -> None:
        """Remove one version (or, with ``version=None``, every version)."""
        with self._lock:
            versions = self._versions_on_disk(name)
            if not versions:
                raise UnknownProgramError(name)
            if version is None:
                doomed = versions
            else:
                doomed = [(v, p) for v, p in versions if v == version]
                if not doomed:
                    raise UnknownProgramError(name, version)
            for _, path in doomed:
                path.unlink()
            self._count_cache = None
            directory = self._program_dir(name)
            if not self._versions_on_disk(name):
                try:
                    directory.rmdir()
                except OSError:
                    pass  # leftover temp files; harmless

    #: How long __len__ may serve a cached count (seconds); bounds how
    #: stale the /stats program count can be when another process writes.
    COUNT_CACHE_TTL = 2.0

    def __len__(self) -> int:
        with self._lock:
            now = time.monotonic()
            if (
                self._count_cache is not None
                and now - self._count_cache[0] < self.COUNT_CACHE_TTL
            ):
                return self._count_cache[1]
            count = len(self.names())
            self._count_cache = (now, count)
            return count

    def __repr__(self) -> str:
        return f"ProgramStore({str(self.root)!r}, programs={len(self)})"
