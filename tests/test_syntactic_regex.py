"""Unit tests for token-sequence regexes and pos() evaluation."""

from repro.syntactic.regex import (
    EPSILON,
    evaluate_pos,
    match_end_positions,
    match_start_positions,
    regex_matches,
    regex_name,
)
from repro.syntactic.tokens import token_by_name


def tok(name):
    return (token_by_name(name).ident,)


class TestRegexMatches:
    def test_epsilon_matches_everywhere(self):
        assert regex_matches(EPSILON, "ab") == [(0, 0), (1, 1), (2, 2)]

    def test_single_token(self):
        assert regex_matches(tok("NumTok"), "a12b3") == [(1, 3), (4, 5)]

    def test_token_seq_adjacent(self):
        seq = tok("NumTok") + tok("SlashTok")
        assert regex_matches(seq, "10/12/2010") == [(0, 3), (3, 6)]

    def test_token_seq_no_match(self):
        seq = tok("SlashTok") + tok("SlashTok")
        assert regex_matches(seq, "10/12") == []

    def test_three_token_seq(self):
        seq = tok("NumTok") + tok("SlashTok") + tok("NumTok")
        assert regex_matches(seq, "10/12") == [(0, 5)]

    def test_name(self):
        assert regex_name(EPSILON) == "ε"
        assert regex_name(tok("NumTok")) == "NumTok"
        assert "TokenSeq" in regex_name(tok("NumTok") + tok("SlashTok"))


class TestBoundarySets:
    def test_end_positions(self):
        assert match_end_positions(tok("NumTok"), "a12b3") == {3, 5}

    def test_start_positions(self):
        assert match_start_positions(tok("NumTok"), "a12b3") == {1, 4}

    def test_epsilon_sets(self):
        assert match_end_positions(EPSILON, "ab") == {0, 1, 2}


class TestEvaluatePos:
    def test_paper_example1_f5(self):
        # pos(SlashTok, ε, 1) on "10/12/2010" = 3 (just after the 1st slash).
        assert evaluate_pos("10/12/2010", tok("SlashTok"), EPSILON, 1) == 3

    def test_end_tok_position(self):
        assert evaluate_pos("10/12/2010", tok("EndTok"), EPSILON, 1) == 10

    def test_start_tok_position(self):
        assert evaluate_pos("1800", tok("StartTok"), EPSILON, 1) == 0

    def test_first_occurrence_of_alph_run_boundaries(self):
        # SubStr2(v, AlphTok, 1) boundaries on "c4 c3 c1".
        assert evaluate_pos("c4 c3 c1", EPSILON, tok("AlphTok"), 1) == 0
        assert evaluate_pos("c4 c3 c1", tok("AlphTok"), EPSILON, 1) == 2

    def test_negative_c_counts_from_right(self):
        assert evaluate_pos("c4 c3 c1", EPSILON, tok("AlphTok"), -1) == 6
        assert evaluate_pos("c4 c3 c1", tok("AlphTok"), EPSILON, -1) == 8

    def test_out_of_range_returns_none(self):
        assert evaluate_pos("c4", EPSILON, tok("AlphTok"), 5) is None
        assert evaluate_pos("c4", EPSILON, tok("AlphTok"), -5) is None

    def test_c_zero_is_undefined(self):
        assert evaluate_pos("c4", EPSILON, tok("AlphTok"), 0) is None

    def test_no_match_returns_none(self):
        assert evaluate_pos("abc", tok("SlashTok"), EPSILON, 1) is None

    def test_pair_requires_both_sides(self):
        # Boundary between digits and a slash: positions 2 and 5 in 10/12/20.
        assert evaluate_pos("10/12/20", tok("NumTok"), tok("SlashTok"), 1) == 2
        assert evaluate_pos("10/12/20", tok("NumTok"), tok("SlashTok"), 2) == 5
        assert evaluate_pos("10/12/20", tok("NumTok"), tok("SlashTok"), 3) is None


class TestBoundaryCacheBounds:
    def test_boundary_cache_is_lru_with_counters(self, monkeypatch):
        import repro.syntactic.regex as regex

        monkeypatch.setattr(regex, "_BOUNDARY_CACHE_LIMIT", 2)
        regex._BOUNDARY_CACHE.clear()
        regex.reset_boundary_cache_stats()
        regex.boundary_index("aa")
        regex.boundary_index("bb")
        regex.boundary_index("aa")  # refresh
        regex.boundary_index("cc")  # evicts bb
        assert "aa" in regex._BOUNDARY_CACHE
        assert "bb" not in regex._BOUNDARY_CACHE
        stats = regex.boundary_cache_stats()
        assert stats == {
            "hits": 1,
            "misses": 3,
            "evictions": 1,
            "hit_rate": 0.25,
            "entries": 2,
            "limit": 2,
        }
