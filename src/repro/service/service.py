"""The thread-safe synthesis service: registry + request cache + store.

:class:`SynthesisService` is the facade a long-running server (or any
embedding application) talks to instead of a bare
:class:`~repro.api.engine.Synthesizer`:

* **Catalog registry.**  The service serves *named* catalogs through a
  :class:`~repro.service.registry.CatalogRegistry`: every request names
  a catalog (default ``"default"``), catalogs are frozen snapshots
  updated copy-on-write at runtime, and the service keeps one engine
  per catalog, rebuilt (cheaply -- snapshots share incrementally
  maintained indexes) when the snapshot moves on.  A request holds one
  snapshot end to end, so it sees either the old or the new catalog,
  never a torn mix.
* **Request cache.**  ``learn`` requests are memoized in an LRU keyed by
  ``(catalog fingerprint, config signature, language, examples
  signature, k)`` -- all stable content digests, so a repeated request
  is served without re-synthesis and two services over equal catalogs
  agree on keys.  Because the fingerprint is part of the key, a catalog
  update can never serve a stale entry.  Hit/miss/eviction stats follow
  the discipline of the engine's memo stats.
* **Program store.**  Learned programs can be persisted by name through
  an attached :class:`~repro.service.store.ProgramStore` and served
  later by ``name`` / ``name@version`` reference.  Artifacts record the
  catalog name + fingerprint (plus per-required-table data digests)
  they were learned against; ``fill`` re-resolves silently when the
  catalog merely grew, and refuses with a
  :class:`~repro.exceptions.StaleProgramError` listing exactly what
  changed when a required table was removed, re-schema'd or rewritten.
* **Serving rules.**  ``fill`` preserves blank rows as empty outputs
  (so outputs align 1:1 with input rows -- the CSV/CLI rule), reports
  arity mismatches as clean per-row errors, and refuses up front (with
  the offending names) to run a program whose lookup tables or columns
  are missing from the serving catalog.

Everything here is safe for concurrent use: the cache and registry take
locks, catalogs are immutable snapshots, and results are immutable once
cached -- so a cache hit returns the *same* result object,
byte-identical to the cold call.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.api.engine import Synthesizer, TaskLike
from repro.api.result import SynthesisResult, as_task
from repro.config import DEFAULT_CONFIG, SynthesisConfig
from repro.matching import matching_stats, normalize_spec
from repro.engine.program import Program
from repro.exceptions import (
    EmptyCatalogError,
    MissingColumnsError,
    MissingTablesError,
    PoolBusyError,
    ProgramStoreError,
    SerializationError,
    ServiceError,
    StaleProgramError,
    WorkerCrashedError,
    WorkerPoolError,
)
from repro.service.registry import DEFAULT_CATALOG, CatalogRegistry
from repro.service.revalidate import Revalidator, WebhookNotifier
from repro.service.store import ProgramStore, StoredProgram, parse_program_ref
from repro.tables.background import background_catalog
from repro.tables.catalog import Catalog

#: Cache-status tags returned by :meth:`SynthesisService.learn`.
CACHE_HIT = "hit"
CACHE_MISS = "miss"

RowsLike = Sequence[Sequence[str]]
ProgramLike = Union[Program, Dict[str, Any], str]

#: Plan-cache sentinel: this (program, catalog) pair does not compile;
#: serve the interpreter without re-attempting on every request.
_UNCOMPILED = object()


@dataclass(frozen=True)
class LearnReply:
    """Everything one learn request produced.

    Unpacks as ``(result, cache_status)`` for the common case (like
    :class:`~repro.api.result.RankedProgram`'s tuple-style unpacking);
    ``stored`` carries the exact :class:`StoredProgram` this request
    saved (or deduped onto) when ``save_as`` was given.  ``catalog_name``
    and ``catalog_fingerprint`` identify the exact snapshot the request
    ran against -- under concurrent registry updates this is the
    consistency witness (old or new, never torn).
    """

    result: SynthesisResult
    cache_status: str
    stored: Optional[StoredProgram] = None
    catalog_name: Optional[str] = None
    catalog_fingerprint: Optional[str] = None

    def __iter__(self) -> Iterator:
        yield self.result
        yield self.cache_status


class RequestCache:
    """A locked LRU over learn requests, with PR-3-style stats."""

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError(f"cache limit must be >= 1, got {limit}")
        self.limit = limit
        self._entries: "OrderedDict[Tuple, SynthesisResult]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Tuple, record: bool = True) -> Optional[SynthesisResult]:
        """Look up ``key``; ``record=False`` skips the hit/miss counters
        (for internal re-checks so each request counts exactly once)."""
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                if record:
                    self._misses += 1
                return None
            self._entries.move_to_end(key)
            if record:
                self._hits += 1
            return result

    def record(self, hit: bool) -> None:
        """Count one request outcome (pairs with ``get(record=False)``)."""
        with self._lock:
            if hit:
                self._hits += 1
            else:
                self._misses += 1

    def put(self, key: Tuple, result: SynthesisResult) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = result
            while len(self._entries) > self.limit:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            total = self._hits + self._misses
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "entries": len(self._entries),
                "limit": self.limit,
                "hit_rate": self._hits / total if total else 0.0,
            }


class FillSession:
    """One resolved program, serving row chunks of a single logical fill.

    Built by :meth:`SynthesisService.fill_session`; the streaming
    transports decode rows incrementally and push each decoded chunk
    through :meth:`fill_chunk`, threading ``start`` so the ``fill row
    N`` error numbering stays global across chunks.  Holds the resolved
    program and its compiled plan (or ``None`` for the interpreter), so
    per-chunk cost is pure row execution.
    """

    __slots__ = ("_service", "program", "plan")

    def __init__(self, service: "SynthesisService", program: Program, plan) -> None:
        self._service = service
        self.program = program
        self.plan = plan

    def fill_chunk(
        self, rows: Sequence[Sequence[str]], start: int = 1
    ) -> List[Optional[str]]:
        """Outputs for one chunk; ``start`` is its first global row number."""
        if self.plan is not None:
            outputs = self.plan.fill_iter(rows, start=start)
        else:
            outputs = self.program.fill_iter_interpreted(rows, start=start)
        try:
            results = list(outputs)
        except ValueError as error:
            raise ServiceError(str(error)) from None
        with self._service._counter_lock:
            self._service._rows_filled += len(results)
        return results


class SynthesisService:
    """Learn-and-serve facade over named catalogs, one backend and config.

    Args:
        catalog: the default serving catalog (registered under
            ``default_catalog``; frozen by registration -- grow it
            through the registry, not in place).
        language: registered backend name or alias (as ``Synthesizer``).
        background: §6 background table names to merge into the default
            catalog (or ``"all"``).
        config: synthesis/ranking knobs.
        store: optional :class:`ProgramStore` for named persistence.
        cache_size: LRU capacity of the learn request cache.
        registry: a :class:`CatalogRegistry` to serve from (one is
            created when omitted); pass a root-backed registry for lazy
            CSV loading (``repro serve --catalog-root``).
        default_catalog: the catalog name used by requests that do not
            pick one.
    """

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        language: str = "semantic",
        background: Union[None, str, Iterable[str]] = None,
        config: SynthesisConfig = DEFAULT_CONFIG,
        store: Optional[ProgramStore] = None,
        cache_size: int = 256,
        registry: Optional[CatalogRegistry] = None,
        default_catalog: str = DEFAULT_CATALOG,
    ) -> None:
        self.registry = registry if registry is not None else CatalogRegistry()
        self.default_catalog = CatalogRegistry.check_name(default_catalog)
        if catalog is not None or background is not None:
            merged = catalog if catalog is not None else Catalog([])
            if background is not None:
                names = None if background == "all" else list(background)
                merged = merged.merged_with(background_catalog(names))
            self.registry.register(self.default_catalog, merged)
        elif self.default_catalog not in self.registry:
            # No default data anywhere (constructor or registry root):
            # an empty catalog keeps `service.engine` well-defined.
            self.registry.register(self.default_catalog, Catalog([]))
        self.language = language
        self.config = config
        self.store = store
        self.cache = RequestCache(cache_size)
        # Compiled execution plans, keyed (program digest, catalog
        # fingerprint): every fill transport (JSON body, streaming,
        # worker pool) shares one plan per (program, snapshot) pair.
        self.plans = RequestCache(cache_size)
        self.started_at = time.time()
        # name -> (registry snapshot the engine was built for, engine).
        # Keyed on the *snapshot* identity, not engine.catalog: with
        # configs the engine cannot share a frozen snapshot with (e.g.
        # use_table_index=False, the oracle), engine.catalog is a copy
        # and comparing it would rebuild the engine on every request.
        self._engines: Dict[str, Tuple[Catalog, Synthesizer]] = {}
        # (name, matcher spec) -> (snapshot, engine) for requests that
        # override the service config's matchers (``/learn`` with a
        # ``matchers`` field); bounded separately so exotic specs cannot
        # evict the hot default engines.
        self._matcher_engines: Dict[
            Tuple[str, Tuple[str, ...]], Tuple[Catalog, Synthesizer]
        ] = {}
        self._engines_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._learn_requests = 0
        self._fill_requests = 0
        self._rows_filled = 0
        self._config_key = config.signature()
        # Single-flight coordination for cold learns: key -> Event the
        # leading request sets once its result is in the cache.
        self._inflight_lock = threading.Lock()
        self._inflight: Dict[Tuple, threading.Event] = {}
        # Optional worker-process pool (attach_pool): cold learns are
        # dispatched to it; fills and cache hits never leave the process.
        self.pool = None
        self._pool_dispatched = 0
        self._pool_fallbacks = 0
        # Changefeed consumers: proactive artifact revalidation (only
        # useful with a store attached -- it checks at event time) and
        # outbound webhook notify.  Both enqueue-and-return; the
        # mutation path never blocks on them.
        self.revalidator = Revalidator(self)
        self.registry.feed.add_listener(self.revalidator.on_event)
        self.webhooks = WebhookNotifier()
        self.registry.feed.add_listener(self.webhooks.on_event)
        self.registry.feed.add_listener(self._pool_invalidate)

    # ------------------------------------------------------------------
    def add_change_webhook(self, url: str) -> None:
        """POST every catalog changefeed event to ``url`` (best-effort)."""
        self.webhooks.add(url)

    def _pool_invalidate(self, event: Dict[str, Any], catalog: Catalog) -> None:
        """Feed listener: tell pool workers to drop engine cache entries
        for the superseded snapshot fingerprint (non-blocking)."""
        pool = self.pool
        old = event.get("old_fingerprint")
        if pool is None or pool.closed or not old:
            return
        try:
            pool.invalidate([old])
        except Exception:  # noqa: BLE001 -- hygiene only, never fail a mutation
            pass

    # ------------------------------------------------------------------
    def attach_pool(self, pool) -> None:
        """Serve cold learns from ``pool`` (a ``WorkerPool``) from now on.

        The pool must share this service's language and config (results
        are rebuilt against the parent's snapshot, so a mismatched pool
        would compute under different knobs).  Mutated catalogs are
        pre-published to the pool's snapshot spool via a registry
        listener, so workers re-attach by fingerprint without a
        first-request stall; storage-backed catalogs never cross (they
        carry live database handles) and keep serving in-process.
        """
        if pool.language != self.language:
            raise WorkerPoolError(
                f"pool language {pool.language!r} != service "
                f"language {self.language!r}"
            )
        if pool.config.signature() != self._config_key:
            raise WorkerPoolError(
                "pool config differs from service config; results would "
                "not be comparable across the process boundary"
            )
        self.pool = pool
        self.registry.add_listener(self._prepublish)

    def _prepublish(self, name: str, snapshot: Catalog) -> None:
        """Registry-mutation listener: push the new fingerprint to the
        pool spool off-thread (publication is bulky -- snapshot save)."""
        pool = self.pool
        if pool is None or snapshot.storage_backed or len(snapshot) == 0:
            return

        def publish() -> None:
            try:
                pool.publish(snapshot)
            except Exception:  # noqa: BLE001 -- workers fall back to lazy attach
                pass

        threading.Thread(
            target=publish, name="repro-pool-prepublish", daemon=True
        ).start()

    def _synthesize_cold(self, engine: Synthesizer, task: TaskLike, k: int):
        """One cold synthesis: on a worker process when possible.

        Dispatch preference: the attached pool, unless the catalog is
        storage-backed (cannot cross) or the pool is gone.  Pool-level
        attach/publish failures degrade to in-process synthesis (counted
        in ``_pool_fallbacks``); queue saturation
        (:class:`PoolBusyError`) and post-retry crashes
        (:class:`WorkerCrashedError`) propagate to the client typed --
        retrying them in-process would hide real capacity problems.
        """
        pool = self.pool
        if (
            pool is not None
            and engine.config is self.config
            # Derived-config engines (per-request matcher overrides) stay
            # in-process: pool workers are pinned to the service config.
            and not engine.catalog.storage_backed
            and not pool.closed
        ):
            try:
                payload = pool.synthesize(engine.catalog, task, k=max(1, k))
            except (PoolBusyError, WorkerCrashedError):
                raise
            except WorkerPoolError:
                payload = None  # degraded: pool unusable for this catalog
            # Any other exception is a task error computed on the worker
            # (NoProgramFound...), identical to in-process: propagate.
            if payload is not None:
                with self._counter_lock:
                    self._pool_dispatched += 1
                return engine.result_from_payload(payload)
            with self._counter_lock:
                self._pool_fallbacks += 1
        return engine.synthesize(task, k=max(1, k))

    # ------------------------------------------------------------------
    def engine_for(self, catalog: Optional[str] = None) -> Synthesizer:
        """The engine serving ``catalog`` (default catalog when ``None``).

        Engines are cached per catalog name and swapped when the
        registry snapshot moves on; the swap is cheap because a frozen
        snapshot is shared with the engine (no index rebuild).  The
        returned engine's ``catalog`` attribute *is* the snapshot it
        will use for every call -- hold the engine to hold the snapshot.
        """
        name = catalog if catalog is not None else self.default_catalog
        snapshot = self.registry.get(name)
        with self._engines_lock:
            cached = self._engines.get(name)
            if cached is not None and cached[0] is snapshot:
                return cached[1]
        # Construct outside the lock: with configs that cannot share a
        # frozen snapshot, Synthesizer copies and re-indexes the whole
        # catalog -- one tenant's rebuild must not stall every other
        # tenant's cache hits.  On a race the first insert wins (both
        # engines are equivalent; the loser is garbage).
        engine = Synthesizer(
            catalog=snapshot, language=self.language, config=self.config
        )
        with self._engines_lock:
            cached = self._engines.get(name)
            if cached is not None and cached[0] is snapshot:
                return cached[1]
            self._engines[name] = (snapshot, engine)
            return engine

    @property
    def engine(self) -> Synthesizer:
        """The default catalog's engine (single-catalog compatibility)."""
        return self.engine_for(None)

    # -- per-request matcher overrides ----------------------------------
    def _matcher_spec(self, matchers) -> Optional[Tuple[str, ...]]:
        """Normalized override spec, or ``None`` when the service config
        already serves it (no derived engine needed).

        Raises :class:`~repro.exceptions.UnknownMatcherError` on unknown
        names -- before any synthesis work or counters move.
        """
        if matchers is None:
            return None
        spec = normalize_spec(matchers)
        if spec == normalize_spec(self.config.matchers):
            return None
        return spec

    def engine_for_matchers(
        self, catalog: Optional[str], spec: Tuple[str, ...]
    ) -> Synthesizer:
        """An engine over ``catalog``'s snapshot with matcher ``spec``.

        Shares the registry snapshot (``with_matchers`` clones are O(1))
        and is cached per (name, spec) until the snapshot moves on.
        """
        name = catalog if catalog is not None else self.default_catalog
        snapshot = self.registry.get(name)
        key = (name, spec)
        with self._engines_lock:
            cached = self._matcher_engines.get(key)
            if cached is not None and cached[0] is snapshot:
                return cached[1]
        engine = Synthesizer(
            catalog=snapshot,
            language=self.language,
            config=replace(self.config, matchers=spec),
        )
        with self._engines_lock:
            cached = self._matcher_engines.get(key)
            if cached is not None and cached[0] is snapshot:
                return cached[1]
            while len(self._matcher_engines) >= 16:
                self._matcher_engines.pop(next(iter(self._matcher_engines)))
            self._matcher_engines[key] = (snapshot, engine)
            return engine

    def cache_key(
        self, task: TaskLike, k: int = 1, catalog: Optional[str] = None
    ) -> Tuple:
        """The request-cache key for ``task`` (stable across processes).

        Keyed on the named snapshot's content fingerprint, so a registry
        update (new fingerprint) makes fresh keys and stale cached
        results are unreachable -- and two catalogs holding equal tables
        share entries, which is sound because results only depend on
        content.
        """
        return self._cache_key(self.engine_for(catalog), task, k)

    def _cache_key(self, engine: Synthesizer, task: TaskLike, k: int) -> Tuple:
        # Derived engines (per-request matcher overrides) key on their own
        # config signature, so overridden and default results never alias.
        config_key = (
            self._config_key
            if engine.config is self.config
            else engine.config.signature()
        )
        return (
            engine.catalog.fingerprint(),
            config_key,
            engine.language,
            as_task(task).signature(),
            max(1, k),
        )

    def learn(
        self,
        task: TaskLike,
        k: int = 1,
        save_as: Optional[str] = None,
        metadata: Optional[Dict[str, Any]] = None,
        catalog: Optional[str] = None,
        matchers: Union[None, str, Sequence[str]] = None,
    ) -> LearnReply:
        """Solve ``task`` against a named catalog (or serve it cached).

        Returns a :class:`LearnReply` -- unpackable as ``(result,
        cache_status)`` where ``cache_status`` is :data:`CACHE_HIT` or
        :data:`CACHE_MISS`.  A hit returns the same immutable result
        object the cold call produced.  The whole request runs against
        one frozen snapshot (grabbed once, up front), so concurrent
        registry updates can never produce a torn read.  ``save_as``
        persists the top-ranked program to the attached store (deduped:
        an unchanged program learned against an unchanged catalog does
        not grow a new version); ``reply.stored`` is the exact version
        this request ended up with.

        ``matchers`` overrides the service config's value-matching
        strategies for this request (a comma string or list of names,
        see ``repro.matching``); unknown names raise
        :class:`~repro.exceptions.UnknownMatcherError` (HTTP 400) before
        any synthesis is attempted.  Overridden requests run on a
        derived engine sharing the same frozen snapshot and are cached
        under the derived config's signature, so they never collide with
        default-spec results.
        """
        if save_as is not None:
            # Fail fast (no store / bad name) before paying for synthesis.
            self.validate_save_target(save_as)
        spec = self._matcher_spec(matchers)
        engine = (
            self.engine_for(catalog)
            if spec is None
            else self.engine_for_matchers(catalog, spec)
        )
        if len(engine.catalog) == 0 and getattr(
            engine.backend, "requires_catalog", True
        ):
            # A catalog-backed learn against a zero-table catalog is a
            # tenant error at this layer (no tables were uploaded yet);
            # refuse with a typed error naming the catalog instead of
            # silently degrading to table-free programs.  (The bare
            # Synthesizer stays permissive -- the paper's Lu subsumes
            # the syntactic language, empty catalog included.)
            raise EmptyCatalogError(
                self.language,
                catalog if catalog is not None else self.default_catalog,
            )
        with self._counter_lock:
            self._learn_requests += 1
        key = self._cache_key(engine, task, k)
        # Internal lookups don't record stats; exactly one hit-or-miss is
        # counted per request below, matching the cache_status the caller
        # sees (so hits + misses == learn_requests even under races).
        result = self.cache.get(key, record=False)
        status = CACHE_HIT
        if result is None:
            try:
                result, status = self._learn_cold(engine, key, task, k)
            except Exception:
                # A failed synthesis was still a miss; keep the invariant.
                self.cache.record(False)
                raise
        self.cache.record(status == CACHE_HIT)
        name = catalog if catalog is not None else self.default_catalog
        stored = None
        if save_as is not None:
            stored = self.save_program(
                save_as,
                result.program,
                metadata=metadata,
                catalog_name=name,
                snapshot=engine.catalog,
                examples=as_task(task).examples,
            )
        return LearnReply(
            result=result,
            cache_status=status,
            stored=stored,
            catalog_name=name,
            catalog_fingerprint=engine.catalog.fingerprint(),
        )

    def _learn_cold(
        self, engine: Synthesizer, key: Tuple, task: TaskLike, k: int
    ) -> Tuple[SynthesisResult, str]:
        """Synthesize on a cache miss, single-flight per key.

        N concurrent identical misses would each pay full (CPU-bound)
        synthesis; instead one request per key leads at a time and the
        rest wait on its event, then serve the leader's cached result.
        Only a registered leader ever synthesizes (and only it pops its
        own in-flight event), so a leader failure wakes the followers,
        who loop: one re-registers as the next leader, the rest wait on
        the new event.  (The key pins the snapshot fingerprint, so every
        request sharing a key computes against identical tables.)
        """
        while True:
            with self._inflight_lock:
                waiter = self._inflight.get(key)
                if waiter is None:
                    self._inflight[key] = threading.Event()
            if waiter is not None:
                waiter.wait()
                result = self.cache.get(key, record=False)
                if result is not None:
                    return result, CACHE_HIT
                continue  # leader failed; race to lead the retry
            # We are the leader.  Re-check the cache: a previous leader
            # may have published between our miss and our registration.
            try:
                result = self.cache.get(key, record=False)
                if result is not None:
                    return result, CACHE_HIT
                result = self._synthesize_cold(engine, task, k)
                self.cache.put(key, result)
                return result, CACHE_MISS
            finally:
                with self._inflight_lock:
                    event = self._inflight.pop(key, None)
                if event is not None:
                    event.set()

    # ------------------------------------------------------------------
    def validate_save_target(self, name: str) -> None:
        """Raise unless ``name`` is storable (store attached, name legal)."""
        if self.store is None:
            raise ServiceError(
                "no program store attached (start the service with a store "
                "directory, e.g. repro serve --store DIR)"
            )
        ProgramStore.check_name(name)

    def _catalog_provenance(
        self, program: Program, catalog_name: str, snapshot: Catalog
    ) -> Dict[str, Any]:
        """The artifact block recording what the program was learned on."""
        tables: Dict[str, Any] = {}
        for table_name in program.required_tables():
            if table_name not in snapshot:
                continue
            table = snapshot.table(table_name)
            tables[table_name] = {
                "data_fingerprint": table.data_fingerprint(),
                "num_rows": table.num_rows,
                "columns": list(table.columns),
            }
        return {
            "name": catalog_name,
            "fingerprint": snapshot.fingerprint(),
            "tables": tables,
        }

    def save_program(
        self,
        name: str,
        program: Program,
        metadata: Optional[Dict[str, Any]] = None,
        catalog_name: Optional[str] = None,
        snapshot: Optional[Catalog] = None,
        examples: Optional[Any] = None,
    ) -> StoredProgram:
        """Persist ``program`` under ``name``; dedupe unchanged saves.

        Delegates to :meth:`ProgramStore.save_if_changed` (atomic under
        the store lock): an idempotent client retrying the same
        learn+save request does not grow the store, and version numbers
        keep meaning "something changed".  New metadata -- or a changed
        catalog -- on an unchanged program does write a new version.
        When ``snapshot`` is given the artifact records catalog
        provenance (name, fingerprint, per-required-table data digests)
        used by :meth:`fill`'s staleness check; ``examples`` (the learn
        input/output pairs) are persisted alongside it so revalidation
        can re-learn the program when the catalog moves destructively.
        """
        self.validate_save_target(name)
        assert self.store is not None  # validate_save_target guarantees it
        catalog_info = None
        if snapshot is not None:
            catalog_info = self._catalog_provenance(
                program, catalog_name or self.default_catalog, snapshot
            )
        return self.store.save_if_changed(
            name,
            program,
            metadata=metadata,
            catalog_info=catalog_info,
            examples=examples,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _staleness_changes(
        provenance: Dict[str, Any], snapshot: Catalog
    ) -> List[str]:
        """What moved under a stored program's feet, human-readably.

        Empty means every required table is intact as a prefix of the
        current data (same columns, original rows unchanged -- appended
        rows are fine), so the program may re-resolve silently.  The
        same rule governs compiled-plan rebinding
        (:meth:`~repro.engine.compile.CompiledProgram.rebound`), so the
        check itself lives in :func:`repro.engine.compile.table_drift`.
        """
        from repro.engine.compile import table_drift

        return table_drift(provenance.get("tables", {}), snapshot)

    def resolve_program(
        self, program: ProgramLike, catalog: Optional[str] = None
    ) -> Program:
        """Coerce a program reference into a runnable :class:`Program`.

        Accepts a live :class:`Program`, a serialized payload dict
        (``Program.to_dict`` form), or a store reference string
        (``"name"`` / ``"name@version"``).  Store references carry
        catalog provenance: when no ``catalog`` is named explicitly, the
        artifact's recorded catalog serves (falling back to the default
        catalog if that name is gone), and when the catalog has moved on
        the program either re-resolves (tables only grew) or raises
        :class:`StaleProgramError` listing exactly what changed.  The
        result is validated against the serving snapshot: missing lookup
        tables or columns raise *before* any row is run.
        """
        if not isinstance(program, (Program, dict, str)):
            raise ServiceError(
                f"bad program reference of type {type(program).__name__}"
            )
        reference = None
        stored = None
        if isinstance(program, str):
            if self.store is None:
                raise ServiceError(
                    f"cannot resolve program reference {program!r}: "
                    "no program store attached"
                )
            name, version = parse_program_ref(program)
            reference = program
            stored = self.store.get(name, version)

        serving_name = catalog
        provenance = stored.catalog_info if stored is not None else None
        if serving_name is None and provenance is not None:
            recorded = provenance.get("name")
            if isinstance(recorded, str) and recorded in self.registry:
                serving_name = recorded
        snapshot = self.engine_for(serving_name).catalog

        if isinstance(program, Program):
            resolved = program
            if catalog is not None and resolved.catalog is not None:
                # An explicitly named catalog must actually serve: rebind
                # the live program to the requested snapshot instead of
                # silently running against whatever it was learned on.
                resolved = Program(
                    resolved.expr,
                    snapshot,
                    resolved.language,
                    resolved.num_inputs,
                    use_compiled_fill=resolved.use_compiled_fill,
                )
        elif isinstance(program, dict):
            resolved = Program.from_dict(program, catalog=snapshot)
        else:
            assert stored is not None
            try:
                resolved = stored.program(catalog=snapshot)
            except SerializationError as error:
                raise ProgramStoreError(
                    f"artifact for {stored.name!r} v{stored.version} is not "
                    f"a valid program: {error}"
                ) from None
            if (
                provenance is not None
                and provenance.get("fingerprint") != snapshot.fingerprint()
            ):
                changes = self._staleness_changes(provenance, snapshot)
                if changes:
                    raise StaleProgramError(
                        reference or stored.name,
                        serving_name
                        or provenance.get("name")
                        or self.default_catalog,
                        changes,
                    )
        missing = resolved.missing_tables(resolved.catalog)
        if missing:
            raise MissingTablesError(missing)
        missing_columns = resolved.missing_columns(resolved.catalog)
        if missing_columns:
            raise MissingColumnsError(missing_columns)
        return resolved

    def _compiled_for(self, resolved: Program):
        """The shared compiled plan for ``resolved``, or ``None``.

        ``None`` means serve the interpreter: the config flag is off, or
        this (program, catalog snapshot) pair does not compile (cached
        as :data:`_UNCOMPILED` so the failed attempt is paid once, not
        per request).  Plans are cached in :attr:`plans` keyed
        ``(program digest, catalog fingerprint)`` -- both stable content
        digests, so every transport (JSON fill, streaming fill, session
        apply) resolving the same program against the same snapshot
        shares one plan, and a catalog update makes old entries
        unreachable rather than stale.
        """
        if not self.config.use_compiled_fill:
            return None
        fingerprint = (
            resolved.catalog.fingerprint()
            if resolved.catalog is not None
            else ""
        )
        # Matcher clones share their base snapshot's fingerprint, so the
        # spec must be part of the key: an exact-fused plan must never be
        # served for an approximately-matched fill (and vice versa).
        spec = (
            tuple(getattr(resolved.catalog, "matcher_spec", ("exact",)))
            if resolved.catalog is not None
            else ("exact",)
        )
        key = (resolved.digest(), fingerprint, spec)
        plan = self.plans.get(key)
        if plan is None:
            from repro.engine.compile import PlanCompileError

            try:
                plan = resolved.compile()
            except PlanCompileError:
                plan = _UNCOMPILED
            self.plans.put(key, plan)
        return None if plan is _UNCOMPILED else plan

    def _rebind_matchers(
        self, resolved: Program, spec: Optional[Tuple[str, ...]]
    ) -> Program:
        """``resolved`` re-bound to a matcher-``spec`` clone of its catalog.

        A no-op when no override was requested or the catalog already
        carries the spec; otherwise the clone is O(1) (shared tables and
        indexes) and the returned program serves lookups through the
        requested pipeline.
        """
        if spec is None or resolved.catalog is None:
            return resolved
        if tuple(getattr(resolved.catalog, "matcher_spec", ("exact",))) == spec:
            return resolved
        return Program(
            resolved.expr,
            resolved.catalog.with_matchers(spec),
            resolved.language,
            resolved.num_inputs,
            use_compiled_fill=resolved.use_compiled_fill,
        )

    def fill(
        self,
        program: ProgramLike,
        rows: RowsLike,
        catalog: Optional[str] = None,
        matchers: Union[None, str, Sequence[str]] = None,
    ) -> List[Optional[str]]:
        """Run ``program`` over ``rows``, one output per input row.

        The alignment contract lives in :meth:`Program.fill_aligned`
        (shared with ``repro fill``): blank rows (zero cells) come back
        as empty-string outputs so the list aligns 1:1 with the input
        rows, a row the program is *undefined* on (the paper's ⊥)
        yields ``None`` (JSON ``null`` over HTTP; the CSV-bound CLI
        renders it as an empty cell), and arity mismatches become a
        clean :class:`ServiceError` naming the 1-based row.  ``catalog``
        picks the serving catalog; store references default to the
        catalog they were learned against (see :meth:`resolve_program`).

        Rows are executed on the shared compiled plan
        (:meth:`_compiled_for`) when enabled, the AST interpreter
        otherwise -- byte-identical outputs either way.

        ``matchers`` serves this fill through the named value-matching
        strategies (``repro.matching``): the program is re-bound to an
        O(1) matcher clone of the serving snapshot, so e.g.
        ``matchers="canonical,fuzzy"`` resolves noisy key spellings that
        exact equality would return empty for.  Approximate fills run on
        the interpreter (compiled plans fuse exact lookups).
        """
        resolved = self._rebind_matchers(
            self.resolve_program(program, catalog=catalog),
            None if matchers is None else normalize_spec(matchers),
        )
        plan = self._compiled_for(resolved)
        try:
            if plan is not None:
                outputs = plan.fill_aligned(rows)
            else:
                outputs = resolved.fill_aligned_interpreted(rows)
        except ValueError as error:
            raise ServiceError(str(error)) from None
        with self._counter_lock:
            self._fill_requests += 1
            self._rows_filled += len(outputs)
        return outputs

    def fill_session(
        self,
        program: ProgramLike,
        catalog: Optional[str] = None,
        matchers: Union[None, str, Sequence[str]] = None,
    ) -> "FillSession":
        """Resolve ``program`` once for an incremental (chunked) fill.

        Resolution (and plan compilation) happens *eagerly* -- bad
        references, missing tables and staleness raise here, before a
        streaming transport commits its HTTP status line.  The returned
        :class:`FillSession` then runs row chunks one at a time; the
        ``fill_requests`` counter ticks here, ``rows_filled`` per chunk.
        ``matchers`` overrides the value-matching strategies exactly as
        in :meth:`fill`.
        """
        resolved = self._rebind_matchers(
            self.resolve_program(program, catalog=catalog),
            None if matchers is None else normalize_spec(matchers),
        )
        plan = self._compiled_for(resolved)
        with self._counter_lock:
            self._fill_requests += 1
        return FillSession(self, resolved, plan)

    def fill_stream(
        self,
        program: ProgramLike,
        rows: Iterable[Sequence[str]],
        catalog: Optional[str] = None,
        chunk_rows: int = 1024,
        matchers: Union[None, str, Sequence[str]] = None,
    ) -> Iterator[List[Optional[str]]]:
        """Stream :meth:`fill` outputs in bounded chunks.

        Resolves the program eagerly (see :meth:`fill_session`), then
        returns a generator yielding lists of at most ``chunk_rows``
        outputs, pulling input rows lazily so a million-row fill holds
        one chunk at a time.  Per-row semantics match :meth:`fill`
        exactly (blank rows, ``None`` for ⊥, ``fill row N`` arity
        errors as :class:`ServiceError`, raised mid-stream from the
        generator); a ``ValueError`` from the ``rows`` iterable itself
        (a row decoder, say) surfaces as a :class:`ServiceError` too.
        """
        if chunk_rows < 1:
            raise ServiceError(f"chunk_rows must be >= 1, got {chunk_rows}")
        session = self.fill_session(program, catalog=catalog, matchers=matchers)

        def chunks() -> Iterator[List[Optional[str]]]:
            start = 1
            iterator = iter(rows)
            while True:
                buffer: List[Sequence[str]] = []
                try:
                    for row in iterator:
                        buffer.append(row)
                        if len(buffer) >= chunk_rows:
                            break
                except ValueError as error:
                    raise ServiceError(str(error)) from None
                if not buffer:
                    return
                yield session.fill_chunk(buffer, start=start)
                start += len(buffer)

        return chunks()

    # ------------------------------------------------------------------
    def list_programs(self) -> List[Dict[str, Any]]:
        """The attached store's listing (empty when no store)."""
        if self.store is None:
            return []
        return self.store.list_programs()

    def stats(self) -> Dict[str, Any]:
        """Service counters, request-cache stats and engine memo stats."""
        from repro.syntactic.intersect import dag_cache_stats
        from repro.syntactic.positions import (
            intersection_cache_stats,
            position_cache_stats,
        )
        from repro.syntactic.regex import boundary_cache_stats

        with self._counter_lock:
            counters = {
                "learn_requests": self._learn_requests,
                "fill_requests": self._fill_requests,
                "rows_filled": self._rows_filled,
                "pool_dispatched": self._pool_dispatched,
                "pool_fallbacks": self._pool_fallbacks,
            }
        if self.pool is not None:
            workers = dict(self.pool.stats())
            workers["enabled"] = True
        else:
            workers = {"enabled": False}
        default_snapshot = self.engine.catalog
        catalogs = {}
        for name in self.registry.loaded_names():
            snapshot = self.registry.get(name)
            entry = {
                "tables": snapshot.table_names(),
                "entries": snapshot.total_entries,
                "fingerprint": snapshot.fingerprint(),
            }
            # Storage tier + residency (sqlite-backed catalogs report
            # their hot-cache counters; snapshot registries report the
            # latest on-disk snapshot version).
            entry.update(self.registry.tier_info(name))
            catalogs[name] = entry
        return {
            "uptime_seconds": time.time() - self.started_at,
            "language": self.engine.language,
            "catalog": {
                "tables": default_snapshot.table_names(),
                "entries": default_snapshot.total_entries,
                "fingerprint": default_snapshot.fingerprint(),
            },
            "default_catalog": self.default_catalog,
            "storage": {
                "tier": self.registry.storage,
                "snapshots": self.registry.snapshots,
            },
            "catalogs": catalogs,
            "changefeed": self.registry.feed.stats(),
            "revalidation": (
                self.revalidator.stats()
                if self.store is not None
                else {"enabled": False}
            ),
            "webhooks": self.webhooks.stats(),
            "workers": workers,
            "requests": counters,
            "request_cache": self.cache.stats(),
            "plan_cache": self.plans.stats(),
            "matching": matching_stats(),
            "store": {
                "attached": self.store is not None,
                "root": str(self.store.root) if self.store is not None else None,
                "programs": len(self.store) if self.store is not None else 0,
            },
            "engine_caches": {
                "positions": position_cache_stats(),
                "boundaries": boundary_cache_stats(),
                "intersections": intersection_cache_stats(),
                "dags": dag_cache_stats(),
            },
        }

    def healthy(self) -> bool:
        """False when an attached pool has zero live workers (degraded).

        A pool-less service is always healthy by this measure; with a
        pool, losing every worker process means learns silently run
        in-process at single-core speed -- /healthz surfaces that as
        degraded instead of 200.
        """
        if self.pool is None or self.pool.closed:
            return True
        return self.pool.alive_count() > 0

    def close(self) -> None:
        """Release the service's durable resources (idempotent).

        Drains and stops the worker pool (if attached), flushes any
        pending snapshot writes and closes storage backends through
        :meth:`CatalogRegistry.close`, and drops the per-catalog engine
        cache.  In-flight requests holding an engine keep their frozen
        snapshot; storage-backed ones lose their backend, so call this
        only after the server stops accepting requests (the
        ``repro serve`` shutdown path does exactly that).
        """
        self.revalidator.close()
        self.webhooks.close()
        if self.pool is not None:
            self.pool.close(drain=True)
        self.registry.close()
        with self._engines_lock:
            self._engines.clear()
