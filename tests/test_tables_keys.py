"""Unit tests for candidate-key discovery."""

from repro.tables import Table, discover_candidate_keys


class TestDiscovery:
    def test_single_column_key(self):
        keys = discover_candidate_keys(["a", "b"], [("1", "x"), ("2", "x")])
        assert keys == (("a",),)

    def test_both_columns_are_keys(self):
        keys = discover_candidate_keys(["a", "b"], [("1", "x"), ("2", "y")])
        assert keys == (("a",), ("b",))

    def test_composite_key_when_no_single_key(self):
        rows = [("1", "x"), ("1", "y"), ("2", "x")]
        keys = discover_candidate_keys(["a", "b"], rows)
        assert keys == (("a", "b"),)

    def test_minimality_skips_supersets(self):
        rows = [("1", "x", "p"), ("2", "y", "p"), ("3", "z", "q")]
        keys = discover_candidate_keys(["a", "b", "c"], rows)
        # a and b are single-column keys; (a, c) etc. must not appear.
        assert ("a",) in keys and ("b",) in keys
        assert all(len(k) == 1 for k in keys)

    def test_width_cap_falls_back_to_all_columns(self):
        # No single column or pair is unique; with max_width=2 the fallback
        # key is the full column set.
        rows = [
            ("1", "x", "p"),
            ("1", "x", "q"),
            ("1", "y", "p"),
            ("2", "x", "p"),
        ]
        keys = discover_candidate_keys(["a", "b", "c"], rows, max_width=2)
        assert keys == (("a", "b", "c"),)

    def test_duplicate_rows_still_return_a_key(self):
        keys = discover_candidate_keys(["a"], [("1",), ("1",)])
        assert keys == (("a",),)


class TestTableIntegration:
    def test_table_discovers_keys_when_not_declared(self):
        table = Table(
            "Sale",
            ["Addr", "St", "Date", "Price"],
            [
                ("24", "18th", "5/21", "110"),
                ("104", "12th", "5/23", "225"),
                ("432", "18th", "5/20", "2015"),
                ("432", "15th", "5/24", "495"),
            ],
        )
        assert ("Addr", "St") in table.keys
        # Addr alone is not unique, so it must not be a key.
        assert ("Addr",) not in table.keys

    def test_paper_time_table_keys(self):
        from repro.tables.background import time_table

        table = time_table()
        assert ("24Hour",) in table.keys
        assert ("12Hour", "AMPM") in table.keys
