"""Matcher protocol, pipeline, registry and serving stats.

A :class:`Matcher` answers one question -- *which stored values does this
query string mean?* -- against a :class:`ValueUniverse` (one table
column's distinct values, or a whole catalog's).  Strategies are
registered by name; :func:`build_pipeline` turns a spec like
``("canonical", "fuzzy")`` into a :class:`MatcherPipeline` that always
runs exact equality first and short-circuits on an exact hit, so clean
data behaves byte-identically to the exact-only oracle and approximate
strategies only ever *add* lower-confidence candidates.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.exceptions import UnknownMatcherError

#: The default matcher spec -- byte-identical to hard-wired equality.
EXACT_SPEC: Tuple[str, ...] = ("exact",)


@dataclass(frozen=True)
class Match:
    """One resolved candidate: a stored value plus how sure we are.

    ``strategy`` names the matcher that produced the hit and
    ``confidence`` its score in ``(0, 1]``; exact hits are always
    ``("exact", 1.0)``.  The pair travels as provenance through
    generation, intersection, ranking (``RankedProgram.confidence``)
    and serialized Select payloads.
    """

    value: str
    strategy: str
    confidence: float


class ValueUniverse:
    """The candidate value set a matcher searches, with optional indexes.

    ``values`` is the deterministic base sequence (catalog/table
    insertion order -- match output order must be reproducible).  The
    optional callables expose prebuilt structures so strategies can skip
    the linear scan:

    * ``contains`` -- O(1) exact membership (a table's value->rows dict).
    * ``canonical_map`` -- lazily returns ``{canonical_form: (raw, ...)}``
      (the COW-maintained secondary index).
    * ``gram_candidates`` -- ``query -> candidate values`` sharing a
      q-gram (the substring index's posting lists).
    * ``alias_groups`` -- lazily returns ``{value: (synonyms, ...)}``
      from a per-catalog synonym table.
    """

    __slots__ = ("_values", "_contains", "_canonical", "_grams", "_aliases")

    def __init__(
        self,
        values: Sequence[str],
        contains: Optional[Callable[[str], bool]] = None,
        canonical_map: Optional[Callable[[], Dict[str, Tuple[str, ...]]]] = None,
        gram_candidates: Optional[Callable[[str], Sequence[str]]] = None,
        alias_groups: Optional[Callable[[], Dict[str, Tuple[str, ...]]]] = None,
    ) -> None:
        self._values = values
        self._contains = contains
        self._canonical = canonical_map
        self._grams = gram_candidates
        self._aliases = alias_groups

    def values(self) -> Sequence[str]:
        return self._values

    def __contains__(self, value: str) -> bool:
        if self._contains is not None:
            return self._contains(value)
        return value in self._values

    def canonical_map(self) -> Optional[Dict[str, Tuple[str, ...]]]:
        return self._canonical() if self._canonical is not None else None

    def gram_candidates(self, query: str) -> Optional[Sequence[str]]:
        return self._grams(query) if self._grams is not None else None

    def alias_groups(self) -> Optional[Dict[str, Tuple[str, ...]]]:
        return self._aliases() if self._aliases is not None else None


class Matcher:
    """One matching strategy.  Subclasses set ``name`` and implement
    :meth:`match`; returned matches must be deterministic for a given
    (query, universe) pair and must only contain values present in the
    universe."""

    name: str = "?"

    def match(self, query: str, universe: ValueUniverse) -> List[Match]:
        raise NotImplementedError


class MatcherPipeline:
    """Matchers in priority order with an exact-first short circuit.

    ``match`` runs exact equality first; a hit resolves the query
    unambiguously (confidence 1.0) and no approximate strategy runs.
    Otherwise every remaining strategy contributes candidates, deduped
    per value keeping the highest confidence, ordered by descending
    confidence (ties: universe value order) so downstream ranking is
    deterministic.
    """

    __slots__ = ("_matchers", "spec")

    def __init__(self, matchers: Sequence[Matcher]) -> None:
        self._matchers: Tuple[Matcher, ...] = tuple(matchers)
        self.spec: Tuple[str, ...] = tuple(m.name for m in self._matchers)

    @property
    def exact_only(self) -> bool:
        """True when this pipeline is plain equality (the oracle path)."""
        return self.spec == EXACT_SPEC

    def match(self, query: str, universe: ValueUniverse) -> List[Match]:
        stats = _STATS
        with _STATS_LOCK:
            stats["queries"] += 1
        if query in universe:
            with _STATS_LOCK:
                stats["exact_hits"] += 1
            return [Match(query, "exact", 1.0)]
        best: Dict[str, Match] = {}
        for matcher in self._matchers[1:]:
            for hit in matcher.match(query, universe):
                kept = best.get(hit.value)
                if kept is None or hit.confidence > kept.confidence:
                    best[hit.value] = hit
        if not best:
            with _STATS_LOCK:
                stats["misses"] += 1
            return []
        if len(best) == 1:
            # The common case (one candidate) skips the ordering scan --
            # building a universe-order map is O(|universe|) and must not
            # run per query.
            hits = list(best.values())
        else:
            order = {value: i for i, value in enumerate(universe.values())}
            hits = sorted(
                best.values(),
                key=lambda m: (-m.confidence, order.get(m.value, len(order))),
            )
        with _STATS_LOCK:
            stats["approx_hits"] += 1
            for hit in hits:
                stats["by_strategy"][hit.strategy] = (
                    stats["by_strategy"].get(hit.strategy, 0) + 1
                )
        return hits


# -- registry -----------------------------------------------------------------
_REGISTRY: Dict[str, Callable[[], Matcher]] = {}


def register_matcher(name: str, factory: Callable[[], Matcher]) -> None:
    _REGISTRY[name] = factory


def _ensure_loaded() -> None:
    if "fuzzy" in _REGISTRY:
        return
    # Importing the strategy modules populates the registry.
    from repro.matching import alias, canonical, exact, fuzzy  # noqa: F401


def available_matchers() -> Tuple[str, ...]:
    """Registered strategy names, sorted."""
    _ensure_loaded()
    return tuple(sorted(_REGISTRY))


def normalize_spec(
    spec: Union[str, Iterable[str], None]
) -> Tuple[str, ...]:
    """A validated, exact-first, deduplicated matcher spec.

    Accepts a comma-separated string or an iterable of names (each of
    which may itself be comma-separated, the CLI form).  Exact matching
    is always part of the pipeline -- approximate strategies extend it,
    they never replace it -- so ``"canonical,fuzzy"`` normalizes to
    ``("exact", "canonical", "fuzzy")``.  Raises
    :class:`~repro.exceptions.UnknownMatcherError` on unknown names.
    """
    _ensure_loaded()
    if spec is None:
        return EXACT_SPEC
    parts: List[str] = []
    raw = [spec] if isinstance(spec, str) else list(spec)
    for item in raw:
        parts.extend(p.strip() for p in str(item).split(",") if p.strip())
    names: List[str] = ["exact"]
    for part in parts:
        if part not in _REGISTRY:
            raise UnknownMatcherError(part, available_matchers())
        if part not in names:
            names.append(part)
    return tuple(names)


def build_pipeline(spec: Union[str, Iterable[str], None]) -> MatcherPipeline:
    """Build a :class:`MatcherPipeline` from a spec (see
    :func:`normalize_spec`)."""
    names = normalize_spec(spec)
    return MatcherPipeline([_REGISTRY[name]() for name in names])


# -- serving stats ------------------------------------------------------------
_STATS_LOCK = threading.Lock()


def _fresh_stats() -> Dict[str, object]:
    return {
        "queries": 0,
        "exact_hits": 0,
        "approx_hits": 0,
        "misses": 0,
        "by_strategy": {},
    }


_STATS = _fresh_stats()


def matching_stats() -> Dict[str, object]:
    """A snapshot of process-wide matcher counters (for ``/stats``)."""
    with _STATS_LOCK:
        snap = dict(_STATS)
        snap["by_strategy"] = dict(_STATS["by_strategy"])  # type: ignore[index]
        return snap


def reset_matching_stats() -> None:
    global _STATS
    with _STATS_LOCK:
        _STATS = _fresh_stats()
