"""Intersect_s: intersection of two Dags (paper §5.3).

The product construction mirrors finite-automaton intersection: product
nodes are pairs of nodes, and an edge exists where both dags have an edge
whose atom sets intersect.  Atom intersection rules:

* ``ConstAtom`` ∩ ``ConstAtom``: equal text survives,
* ``RefAtom`` ∩ ``RefAtom``: sources must merge (equality for variables;
  node-pair intersection in Lu, supplied via ``merge_source``),
* ``SubStrAtom`` ∩ ``SubStrAtom``: sources must merge and both position
  sets must intersect (``IntersectPos``).

``merge_source(s1, s2)`` returns the merged source id or ``None``; in Lu
it allocates product nodes whose emptiness is only known after the global
pruning fixpoint, so the returned dag may still contain atoms that later
prove empty -- :meth:`Dag.pruned` removes them.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.syntactic.dag import Atom, ConstAtom, Dag, Edge, RefAtom, SubStrAtom
from repro.syntactic.positions import intersect_position_sets

MergeSource = Callable[[int, int], Optional[int]]


def equal_source_merge(first: int, second: int) -> Optional[int]:
    """Source merge for pure Ls: variable indices must be equal."""
    return first if first == second else None


def _intersect_atoms(
    first: List[Atom], second: List[Atom], merge_source: MergeSource
) -> List[Atom]:
    """All pairwise atom intersections, bucketed by atom type for speed."""
    result: List[Atom] = []
    consts = {atom.text for atom in first if isinstance(atom, ConstAtom)}
    refs = [atom for atom in first if isinstance(atom, RefAtom)]
    substrs = [atom for atom in first if isinstance(atom, SubStrAtom)]
    for atom in second:
        if isinstance(atom, ConstAtom):
            if atom.text in consts:
                result.append(atom)
        elif isinstance(atom, RefAtom):
            for other in refs:
                merged = merge_source(other.source, atom.source)
                if merged is not None:
                    result.append(RefAtom(merged))
        else:
            for other in substrs:
                merged = merge_source(other.source, atom.source)
                if merged is None:
                    continue
                p1 = intersect_position_sets(other.p1, atom.p1)
                if p1 is None:
                    continue
                p2 = intersect_position_sets(other.p2, atom.p2)
                if p2 is None:
                    continue
                result.append(SubStrAtom(merged, p1, p2))
    return result


def intersect_dags(
    first: Dag,
    second: Dag,
    merge_source: MergeSource = equal_source_merge,
) -> Optional[Dag]:
    """Product-automaton intersection; ``None`` when no common expression.

    Returned node ids are freshly numbered; the pair structure is internal.
    """
    if first.is_trivial_empty or second.is_trivial_empty:
        # Only the empty concatenation lives in a trivial dag; intersection
        # is non-empty only if both are trivial.
        if first.is_trivial_empty and second.is_trivial_empty:
            return Dag((0,), 0, 0, {})
        return None

    out1 = first.out_neighbors()
    out2 = second.out_neighbors()
    pair_ids: Dict[Tuple[int, int], int] = {}
    edges: Dict[Edge, List[Atom]] = {}

    def pair_id(pair: Tuple[int, int]) -> int:
        ident = pair_ids.get(pair)
        if ident is None:
            ident = len(pair_ids)
            pair_ids[pair] = ident
        return ident

    start = (first.source, second.source)
    goal = (first.target, second.target)
    pair_id(start)
    worklist = [start]
    seen = {start}
    while worklist:
        a, b = worklist.pop()
        for a2 in out1[a]:
            options1 = first.edges.get((a, a2))
            if not options1:
                continue
            for b2 in out2[b]:
                options2 = second.edges.get((b, b2))
                if not options2:
                    continue
                merged = _intersect_atoms(options1, options2, merge_source)
                if not merged:
                    continue
                edges[(pair_id((a, b)), pair_id((a2, b2)))] = merged
                if (a2, b2) not in seen:
                    seen.add((a2, b2))
                    worklist.append((a2, b2))

    if goal not in pair_ids:
        return None
    dag = Dag(
        tuple(range(len(pair_ids))),
        pair_ids[start],
        pair_ids[goal],
        edges,
    )
    return dag.pruned(lambda atom: True)
