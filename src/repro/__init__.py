"""repro: a reproduction of *Learning Semantic String Transformations from
Examples* (Singh & Gulwani, VLDB 2012).

Public API quick reference::

    from repro import Table, Catalog, SynthesisSession, synthesize

    catalog = Catalog([Table("Comp", ["Id", "Name"], rows, keys=[("Id",)])])
    program = synthesize([(("c4 c3 c1",), "Facebook Apple Microsoft")],
                         catalog=catalog)
    program(("c2 c5 c6",))   # -> "Google IBM Xerox"

Sub-packages: :mod:`repro.tables` (relational substrate, §4/§6),
:mod:`repro.syntactic` (Ls, §5), :mod:`repro.lookup` (Lt, §4),
:mod:`repro.semantic` (Lu, §5), :mod:`repro.engine` (interaction model,
§3.2), :mod:`repro.benchsuite` (the 50-problem evaluation, §7).
"""

from repro.config import DEFAULT_CONFIG, RankingWeights, SynthesisConfig
from repro.engine import Program, SynthesisSession, paraphrase, synthesize
from repro.exceptions import (
    InconsistentExampleError,
    NoProgramFoundError,
    ReproError,
    SynthesisError,
    TableError,
)
from repro.tables import Catalog, Table
from repro.tables.background import background_catalog, background_table

__version__ = "1.0.0"

__all__ = [
    "Catalog",
    "DEFAULT_CONFIG",
    "InconsistentExampleError",
    "NoProgramFoundError",
    "Program",
    "RankingWeights",
    "ReproError",
    "SynthesisConfig",
    "SynthesisSession",
    "SynthesisError",
    "Table",
    "TableError",
    "background_catalog",
    "background_table",
    "paraphrase",
    "synthesize",
    "__version__",
]
