"""The thread-safe synthesis service: request cache + store + serving rules.

:class:`SynthesisService` is the facade a long-running server (or any
embedding application) talks to instead of a bare
:class:`~repro.api.engine.Synthesizer`:

* **Request cache.**  ``learn`` requests are memoized in an LRU keyed by
  ``(catalog fingerprint, config signature, language, examples
  signature, k)`` -- all stable content digests, so a repeated request
  is served without re-synthesis and two services over equal catalogs
  agree on keys.  Hit/miss/eviction stats follow the discipline of the
  engine's memo stats (``hits``/``misses``/``evictions``/``entries``/
  ``limit``).
* **Program store.**  Learned programs can be persisted by name through
  an attached :class:`~repro.service.store.ProgramStore` and served
  later by ``name`` / ``name@version`` reference.
* **Serving rules.**  ``fill`` preserves blank rows as empty outputs
  (so outputs align 1:1 with input rows -- the CSV/CLI rule), reports
  arity mismatches as clean per-row errors, and refuses up front (with
  the offending table names) to run a program whose lookup tables are
  missing from the serving catalog.

Everything here is safe for concurrent use: the cache takes a lock, the
engine itself is already thread-safe (``run_batch``'s default executor
exercises it concurrently), and results are immutable once cached --
so a cache hit returns the *same* result object, byte-identical to the
cold call.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.api.engine import Synthesizer, TaskLike
from repro.api.result import SynthesisResult, as_task
from repro.config import DEFAULT_CONFIG, SynthesisConfig
from repro.engine.program import Program
from repro.exceptions import MissingTablesError, ServiceError
from repro.service.store import ProgramStore, StoredProgram, parse_program_ref
from repro.tables.catalog import Catalog

#: Cache-status tags returned by :meth:`SynthesisService.learn`.
CACHE_HIT = "hit"
CACHE_MISS = "miss"

RowsLike = Sequence[Sequence[str]]
ProgramLike = Union[Program, Dict[str, Any], str]


@dataclass(frozen=True)
class LearnReply:
    """Everything one learn request produced.

    Unpacks as ``(result, cache_status)`` for the common case (like
    :class:`~repro.api.result.RankedProgram`'s tuple-style unpacking);
    ``stored`` carries the exact :class:`StoredProgram` this request
    saved (or deduped onto) when ``save_as`` was given.
    """

    result: SynthesisResult
    cache_status: str
    stored: Optional[StoredProgram] = None

    def __iter__(self) -> Iterator:
        yield self.result
        yield self.cache_status


class RequestCache:
    """A locked LRU over learn requests, with PR-3-style stats."""

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError(f"cache limit must be >= 1, got {limit}")
        self.limit = limit
        self._entries: "OrderedDict[Tuple, SynthesisResult]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Tuple, record: bool = True) -> Optional[SynthesisResult]:
        """Look up ``key``; ``record=False`` skips the hit/miss counters
        (for internal re-checks so each request counts exactly once)."""
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                if record:
                    self._misses += 1
                return None
            self._entries.move_to_end(key)
            if record:
                self._hits += 1
            return result

    def record(self, hit: bool) -> None:
        """Count one request outcome (pairs with ``get(record=False)``)."""
        with self._lock:
            if hit:
                self._hits += 1
            else:
                self._misses += 1

    def put(self, key: Tuple, result: SynthesisResult) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = result
            while len(self._entries) > self.limit:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            total = self._hits + self._misses
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "entries": len(self._entries),
                "limit": self.limit,
                "hit_rate": self._hits / total if total else 0.0,
            }


class SynthesisService:
    """Learn-and-serve facade over one catalog, backend and config.

    Args:
        catalog: the serving catalog (tables every request runs against).
        language: registered backend name or alias (as ``Synthesizer``).
        background: §6 background table names to merge (or ``"all"``).
        config: synthesis/ranking knobs.
        store: optional :class:`ProgramStore` for named persistence.
        cache_size: LRU capacity of the learn request cache.
    """

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        language: str = "semantic",
        background: Union[None, str, Iterable[str]] = None,
        config: SynthesisConfig = DEFAULT_CONFIG,
        store: Optional[ProgramStore] = None,
        cache_size: int = 256,
    ) -> None:
        self.engine = Synthesizer(
            catalog=catalog, language=language, background=background, config=config
        )
        self.store = store
        self.cache = RequestCache(cache_size)
        self.started_at = time.time()
        self._counter_lock = threading.Lock()
        self._learn_requests = 0
        self._fill_requests = 0
        self._rows_filled = 0
        self._config_key = config.signature()
        # Single-flight coordination for cold learns: key -> Event the
        # leading request sets once its result is in the cache.
        self._inflight_lock = threading.Lock()
        self._inflight: Dict[Tuple, threading.Event] = {}

    # ------------------------------------------------------------------
    def cache_key(self, task: TaskLike, k: int = 1) -> Tuple:
        """The request-cache key for ``task`` (stable across processes).

        The catalog fingerprint is read live (``Catalog.fingerprint`` is
        itself cached and invalidated by ``Catalog.add``), so a caller
        that mutates the engine's catalog gets fresh keys instead of
        stale cached results.
        """
        return (
            self.engine.catalog.fingerprint(),
            self._config_key,
            self.engine.language,
            as_task(task).signature(),
            max(1, k),
        )

    def learn(
        self,
        task: TaskLike,
        k: int = 1,
        save_as: Optional[str] = None,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> LearnReply:
        """Solve ``task`` (or serve it from the request cache).

        Returns a :class:`LearnReply` -- unpackable as ``(result,
        cache_status)`` where ``cache_status`` is :data:`CACHE_HIT` or
        :data:`CACHE_MISS`.  A hit returns the same immutable result
        object the cold call produced.  ``save_as`` persists the
        top-ranked program to the attached store (deduped: an unchanged
        program does not grow a new version -- see :meth:`save_program`);
        ``reply.stored`` is the exact version this request ended up with.
        """
        if save_as is not None:
            # Fail fast (no store / bad name) before paying for synthesis.
            self.validate_save_target(save_as)
        with self._counter_lock:
            self._learn_requests += 1
        key = self.cache_key(task, k)
        # Internal lookups don't record stats; exactly one hit-or-miss is
        # counted per request below, matching the cache_status the caller
        # sees (so hits + misses == learn_requests even under races).
        result = self.cache.get(key, record=False)
        status = CACHE_HIT
        if result is None:
            try:
                result, status = self._learn_cold(key, task, k)
            except Exception:
                # A failed synthesis was still a miss; keep the invariant.
                self.cache.record(False)
                raise
        self.cache.record(status == CACHE_HIT)
        stored = None
        if save_as is not None:
            stored = self.save_program(save_as, result.program, metadata=metadata)
        return LearnReply(result=result, cache_status=status, stored=stored)

    def _learn_cold(
        self, key: Tuple, task: TaskLike, k: int
    ) -> Tuple[SynthesisResult, str]:
        """Synthesize on a cache miss, single-flight per key.

        N concurrent identical misses would each pay full (CPU-bound)
        synthesis; instead one request per key leads at a time and the
        rest wait on its event, then serve the leader's cached result.
        Only a registered leader ever synthesizes (and only it pops its
        own in-flight event), so a leader failure wakes the followers,
        who loop: one re-registers as the next leader, the rest wait on
        the new event.
        """
        while True:
            with self._inflight_lock:
                waiter = self._inflight.get(key)
                if waiter is None:
                    self._inflight[key] = threading.Event()
            if waiter is not None:
                waiter.wait()
                result = self.cache.get(key, record=False)
                if result is not None:
                    return result, CACHE_HIT
                continue  # leader failed; race to lead the retry
            # We are the leader.  Re-check the cache: a previous leader
            # may have published between our miss and our registration.
            try:
                result = self.cache.get(key, record=False)
                if result is not None:
                    return result, CACHE_HIT
                result = self.engine.synthesize(task, k=max(1, k))
                self.cache.put(key, result)
                return result, CACHE_MISS
            finally:
                with self._inflight_lock:
                    event = self._inflight.pop(key, None)
                if event is not None:
                    event.set()

    # ------------------------------------------------------------------
    def validate_save_target(self, name: str) -> None:
        """Raise unless ``name`` is storable (store attached, name legal)."""
        if self.store is None:
            raise ServiceError(
                "no program store attached (start the service with a store "
                "directory, e.g. repro serve --store DIR)"
            )
        ProgramStore.check_name(name)

    def save_program(
        self,
        name: str,
        program: Program,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> StoredProgram:
        """Persist ``program`` under ``name``; dedupe unchanged saves.

        Delegates to :meth:`ProgramStore.save_if_changed` (atomic under
        the store lock): an idempotent client retrying the same
        learn+save request does not grow the store, and version numbers
        keep meaning "something changed".  New metadata on an unchanged
        program does write a new version.  (``ProgramStore.save`` is the
        always-write primitive.)
        """
        self.validate_save_target(name)
        assert self.store is not None  # validate_save_target guarantees it
        return self.store.save_if_changed(name, program, metadata=metadata)

    def resolve_program(self, program: ProgramLike) -> Program:
        """Coerce a program reference into a runnable :class:`Program`.

        Accepts a live :class:`Program`, a serialized payload dict
        (``Program.to_dict`` form), or a store reference string
        (``"name"`` / ``"name@version"``).  The result is validated
        against the serving catalog: missing lookup tables raise
        :class:`MissingTablesError` *before* any row is run.
        """
        if isinstance(program, Program):
            resolved = program
        elif isinstance(program, dict):
            resolved = Program.from_dict(program, catalog=self.engine.catalog)
        elif isinstance(program, str):
            if self.store is None:
                raise ServiceError(
                    f"cannot resolve program reference {program!r}: "
                    "no program store attached"
                )
            name, version = parse_program_ref(program)
            resolved = self.store.load(name, version, catalog=self.engine.catalog)
        else:
            raise ServiceError(
                f"bad program reference of type {type(program).__name__}"
            )
        missing = resolved.missing_tables(resolved.catalog)
        if missing:
            raise MissingTablesError(missing)
        return resolved

    def fill(
        self, program: ProgramLike, rows: RowsLike
    ) -> List[Optional[str]]:
        """Run ``program`` over ``rows``, one output per input row.

        The alignment contract lives in :meth:`Program.fill_aligned`
        (shared with ``repro fill``): blank rows (zero cells) come back
        as empty-string outputs so the list aligns 1:1 with the input
        rows, a row the program is *undefined* on (the paper's ⊥)
        yields ``None`` (JSON ``null`` over HTTP; the CSV-bound CLI
        renders it as an empty cell), and arity mismatches become a
        clean :class:`ServiceError` naming the 1-based row.
        """
        resolved = self.resolve_program(program)
        try:
            outputs = resolved.fill_aligned(rows)
        except ValueError as error:
            raise ServiceError(str(error)) from None
        with self._counter_lock:
            self._fill_requests += 1
            self._rows_filled += len(outputs)
        return outputs

    # ------------------------------------------------------------------
    def list_programs(self) -> List[Dict[str, Any]]:
        """The attached store's listing (empty when no store)."""
        if self.store is None:
            return []
        return self.store.list_programs()

    def stats(self) -> Dict[str, Any]:
        """Service counters, request-cache stats and engine memo stats."""
        from repro.syntactic.intersect import dag_cache_stats
        from repro.syntactic.positions import (
            intersection_cache_stats,
            position_cache_stats,
        )
        from repro.syntactic.regex import boundary_cache_stats

        with self._counter_lock:
            counters = {
                "learn_requests": self._learn_requests,
                "fill_requests": self._fill_requests,
                "rows_filled": self._rows_filled,
            }
        return {
            "uptime_seconds": time.time() - self.started_at,
            "language": self.engine.language,
            "catalog": {
                "tables": self.engine.catalog.table_names(),
                "entries": self.engine.catalog.total_entries,
                "fingerprint": self.engine.catalog.fingerprint(),
            },
            "requests": counters,
            "request_cache": self.cache.stats(),
            "store": {
                "attached": self.store is not None,
                "root": str(self.store.root) if self.store is not None else None,
                "programs": len(self.store) if self.store is not None else 0,
            },
            "engine_caches": {
                "positions": position_cache_stats(),
                "boundaries": boundary_cache_stats(),
                "intersections": intersection_cache_stats(),
                "dags": dag_cache_stats(),
            },
        }
