"""The Table value object.

A table has a name, an ordered list of column names, rows of string cells
and a list of *candidate keys* (each an ordered tuple of column names).
The paper restricts the columns used in Select conditions to candidate
keys so that a lookup returns at most one row (§4.1); candidate keys are
therefore first-class metadata here.

Keys may be declared explicitly or discovered from the data with
:func:`repro.tables.keys.discover_candidate_keys`.
Declared keys are validated against the data at construction time.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import (
    DuplicateColumnError,
    KeyConstraintError,
    TableError,
    UnknownColumnError,
)

CandidateKey = Tuple[str, ...]


def _normalize_rows(
    name: str,
    columns: Sequence[str],
    rows: Iterable[Sequence[str]],
    start: int,
) -> List[Tuple[str, ...]]:
    """Validate/tuple-ize rows; ``start`` offsets row numbers in errors."""
    normalized: List[Tuple[str, ...]] = []
    for row_number, row in enumerate(rows, start=start):
        row = tuple(row)
        if len(row) != len(columns):
            raise TableError(
                f"table {name!r} row {row_number} has {len(row)} cells, "
                f"expected {len(columns)}"
            )
        for cell in row:
            if not isinstance(cell, str):
                raise TableError(
                    f"table {name!r} row {row_number} has non-string cell {cell!r}"
                )
        normalized.append(row)
    return normalized


class Table:
    """An immutable relational table of string cells.

    Args:
        name: table identifier used by ``Select`` expressions.
        columns: ordered column names (unique).
        rows: sequence of rows; each row has one string per column.
        keys: optional explicit candidate keys; when omitted, minimal keys
            are discovered from the data (width <= ``max_key_width``).
        max_key_width: cap on discovered key width.

    >>> t = Table("Comp", ["Id", "Name"], [("c1", "Microsoft"), ("c2", "Google")])
    >>> t.lookup("Name", {"Id": "c1"})
    'Microsoft'
    """

    __slots__ = (
        "name",
        "columns",
        "rows",
        "keys",
        "_keys_declared",
        "_max_key_width",
        "_column_index",
        "_key_row_index",
        "_value_rows",
        "_canonical_maps",
        "_fingerprint",
        "_data_fingerprint",
        "_rows_digest",
        "_extends_rows",
    )

    #: Slots that survive pickling -- the index/digest caches are
    #: rebuilt lazily on the other side (hash objects cannot cross a
    #: process boundary, and shipping caches would bloat the payload
    #: ``run_batch(executor="process")`` sends to every worker).
    _PICKLED_SLOTS = (
        "name",
        "columns",
        "rows",
        "keys",
        "_keys_declared",
        "_max_key_width",
        "_column_index",
        "_key_row_index",
    )

    def __init__(
        self,
        name: str,
        columns: Sequence[str],
        rows: Iterable[Sequence[str]],
        keys: Optional[Sequence[Sequence[str]]] = None,
        max_key_width: int = 2,
    ) -> None:
        if not name:
            raise TableError("table name must be non-empty")
        columns = list(columns)
        if not columns:
            raise TableError(f"table {name!r} must have at least one column")
        seen_at: Dict[str, int] = {}
        for position, column in enumerate(columns, start=1):
            if column in seen_at:
                raise DuplicateColumnError(name, column, (seen_at[column], position))
            seen_at[column] = position

        normalized_rows = _normalize_rows(name, columns, rows, start=0)
        if not normalized_rows:
            raise TableError(f"table {name!r} must have at least one row")

        self.name = name
        self.columns: Tuple[str, ...] = tuple(columns)
        self.rows: Tuple[Tuple[str, ...], ...] = tuple(normalized_rows)
        self._column_index: Dict[str, int] = {c: i for i, c in enumerate(self.columns)}

        self._keys_declared = keys is not None
        self._max_key_width = max_key_width
        if keys is None:
            from repro.tables.keys import discover_candidate_keys

            discovered = discover_candidate_keys(
                self.columns, self.rows, max_width=max_key_width
            )
            self.keys: Tuple[CandidateKey, ...] = discovered
        else:
            validated: List[CandidateKey] = []
            for key in keys:
                key = tuple(key)
                for column in key:
                    if column not in self._column_index:
                        raise UnknownColumnError(name, column)
                self._check_key_uniqueness(key)
                validated.append(key)
            if not validated:
                raise KeyConstraintError(f"table {name!r}: empty candidate key list")
            self.keys = tuple(validated)

        # Per-column value -> row-number inverted index; built lazily on the
        # first find_rows/lookup (the serve-time hot path), never mutated
        # afterwards -- the table is immutable.
        self._value_rows: Optional[Dict[str, Dict[str, Tuple[int, ...]]]] = None
        # Per-column canonical-form -> raw distinct values secondary
        # index (repro.matching.canonicalize); built lazily per column on
        # the first canonical-matched lookup, patched copy-on-write by
        # extended().
        self._canonical_maps: Optional[Dict[str, Dict[str, Tuple[str, ...]]]] = None
        self._fingerprint: Optional[str] = None
        self._data_fingerprint: Optional[str] = None
        self._rows_digest = None  # streaming hash state; see fingerprint()
        # The rows tuple this table extends (set by extended()): lets
        # Catalog.with_table recognize an append in O(1) -- by tuple
        # identity -- instead of comparing the whole old-rows prefix.
        self._extends_rows: Optional[Tuple[Tuple[str, ...], ...]] = None

        # Precompute key-tuple -> row index for every candidate key; used by
        # both evaluation and condition construction.  A snapshot-loaded
        # table arrives with this set to None (the mappings cost more to
        # decode than to rebuild) and recreates each key's mapping on its
        # first keyed lookup.
        self._key_row_index: Optional[
            Dict[CandidateKey, Dict[Tuple[str, ...], int]]
        ] = {key: self._build_key_index(key) for key in self.keys}

    # ------------------------------------------------------------------
    def _check_key_uniqueness(self, key: CandidateKey) -> None:
        seen: Dict[Tuple[str, ...], int] = {}
        for row_number, row in enumerate(self.rows):
            values = tuple(row[self._column_index[c]] for c in key)
            if values in seen:
                raise KeyConstraintError(
                    f"table {self.name!r}: candidate key {key} is not unique "
                    f"(rows {seen[values]} and {row_number} share {values})"
                )
            seen[values] = row_number

    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    def column_position(self, column: str) -> int:
        """Index of ``column``; raises :class:`UnknownColumnError`."""
        try:
            return self._column_index[column]
        except KeyError:
            raise UnknownColumnError(self.name, column) from None

    def has_column(self, column: str) -> bool:
        return column in self._column_index

    def cell(self, column: str, row: int) -> str:
        """The paper's ``T[C, r]``."""
        return self.rows[row][self.column_position(column)]

    def column_values(self, column: str) -> Tuple[str, ...]:
        position = self.column_position(column)
        return tuple(row[position] for row in self.rows)

    def _build_key_index(self, key: CandidateKey) -> Dict[Tuple[str, ...], int]:
        positions = [self._column_index[c] for c in key]
        if len(positions) == 1:
            position = positions[0]
            return {(row[position],): n for n, row in enumerate(self.rows)}
        return {
            tuple(row[p] for p in positions): n
            for n, row in enumerate(self.rows)
        }

    def _ensure_key_row_index(
        self,
    ) -> Dict[CandidateKey, Dict[Tuple[str, ...], int]]:
        if self._key_row_index is None:
            self._key_row_index = {}
        index = self._key_row_index
        if len(index) < len(self.keys):
            for key in self.keys:
                if key not in index:
                    index[key] = self._build_key_index(key)
        return index

    def row_by_key(self, key: CandidateKey, values: Tuple[str, ...]) -> Optional[int]:
        """Row index whose ``key`` columns equal ``values``, or ``None``."""
        index_map = self._key_row_index
        if index_map is None:
            index_map = self._key_row_index = {}
        index = index_map.get(key)
        if index is None:
            if key not in self.keys:
                raise KeyConstraintError(
                    f"table {self.name!r}: {key} is not a declared candidate key"
                )
            index = index_map[key] = self._build_key_index(key)
        return index.get(values)

    def _ensure_value_rows(self) -> Dict[str, Dict[str, Tuple[int, ...]]]:
        if self._value_rows is None:
            index: Dict[str, Dict[str, List[int]]] = {c: {} for c in self.columns}
            for row_number, row in enumerate(self.rows):
                for column, value in zip(self.columns, row):
                    index[column].setdefault(value, []).append(row_number)
            self._value_rows = {
                column: {value: tuple(rows) for value, rows in postings.items()}
                for column, postings in index.items()
            }
        return self._value_rows

    def value_rows(self, column: str, value: str) -> Tuple[int, ...]:
        """Row numbers whose ``column`` cell equals ``value`` (ascending)."""
        self.column_position(column)  # raises UnknownColumnError
        return self._ensure_value_rows()[column].get(value, ())

    def column_postings(self, column: str) -> Dict[str, Tuple[int, ...]]:
        """The whole ``value -> row numbers`` index of one column.

        The compiled fill path (``repro.engine.compile``) fuses a
        single-predicate ``Select`` into one dict built from this
        mapping.  Shared with the lazily built index -- do not mutate.
        """
        self.column_position(column)  # raises UnknownColumnError
        return self._ensure_value_rows()[column]

    def canonical_map(self, column: str) -> Dict[str, Tuple[str, ...]]:
        """``canonical form -> raw values`` over one column's distinct values.

        The secondary index behind ``CanonicalMatcher``
        (``repro.matching.canonicalize``): raw values keep first-seen row
        order within each group.  Built lazily per column and patched --
        not rebuilt -- by :meth:`extended`.
        """
        from repro.matching.canonical import canonicalize

        maps = getattr(self, "_canonical_maps", None)
        if maps is None:
            maps = self._canonical_maps = {}
        built = maps.get(column)
        if built is None:
            built = {}
            for value in self.column_postings(column):
                canon = canonicalize(value)
                built[canon] = built.get(canon, ()) + (value,)
            maps[column] = built
        return built

    def column_universe(self, column: str, alias_groups=None):
        """The :class:`repro.matching.ValueUniverse` of one column."""
        from repro.matching.base import ValueUniverse

        postings = self.column_postings(column)
        return ValueUniverse(
            postings,
            contains=postings.__contains__,
            canonical_map=lambda: self.canonical_map(column),
            alias_groups=alias_groups,
        )

    def find_rows_matched(
        self,
        conditions: Dict[str, str],
        pipeline,
        alias_groups=None,
    ) -> Dict[int, Tuple[float, str]]:
        """Rows matching every condition under ``pipeline``, with provenance.

        Generalizes :meth:`find_rows` to approximate matching: each
        condition value is resolved to a match set by the pipeline, a row
        satisfies the condition when its cell equals *any* matched value,
        and the returned mapping carries each surviving row's overall
        ``(confidence, strategy)`` -- the weakest condition wins (an
        all-exact row reads ``(1.0, "exact")``).  With an exact-only
        pipeline the key set equals ``find_rows(conditions)``.
        """
        for column in conditions:
            self.column_position(column)  # raises UnknownColumnError
        if not conditions:
            return {row: (1.0, "exact") for row in range(len(self.rows))}
        combined: Optional[Dict[int, Tuple[float, str]]] = None
        for column, value in conditions.items():
            matches = pipeline.match(
                value, self.column_universe(column, alias_groups)
            )
            per_row: Dict[int, Tuple[float, str]] = {}
            for match in matches:  # descending confidence: first wins
                for row in self.value_rows(column, match.value):
                    if row not in per_row:
                        per_row[row] = (match.confidence, match.strategy)
            if combined is None:
                combined = per_row
            else:
                combined = {
                    row: min(combined[row], hit)
                    for row, hit in per_row.items()
                    if row in combined
                }
            if not combined:
                return {}
        assert combined is not None
        return combined

    def lookup_matched(
        self,
        column: str,
        conditions: Dict[str, str],
        pipeline,
        alias_groups=None,
    ) -> Tuple[str, float, str]:
        """Matched-lookup Select semantics: ``(output, confidence, strategy)``.

        The exactly-one-row rule of :meth:`lookup` applied per confidence
        level: among the matched rows, only the highest-confidence tier
        competes, and the lookup succeeds when that tier holds exactly
        one row -- so an exact hit is never displaced (or made ambiguous)
        by approximate ones, and two equally-plausible approximate rows
        yield ``""`` exactly like two exact rows do today.
        """
        rows = self.find_rows_matched(conditions, pipeline, alias_groups)
        if not rows:
            return "", 0.0, "none"
        best = max(hit[0] for hit in rows.values())
        tier = [row for row, hit in rows.items() if hit[0] == best]
        if len(tier) != 1:
            return "", 0.0, "ambiguous"
        winner = tier[0]
        confidence, strategy = rows[winner]
        return self.cell(column, winner), confidence, strategy

    def _ensure_rows_digest(self):
        """The streaming SHA-256 over (name, columns, rows) -- resumable.

        Rows are hashed one JSON record at a time (NUL-framed, so the
        framing is unambiguous), which makes the digest *state*
        extendable: :meth:`extended` copies the parent's state and feeds
        only the appended rows, turning the O(total cells) re-hash of a
        grown table into O(new cells).  Built fully in a local before
        publishing, so a concurrent reader never copies half-fed state.
        """
        if self._rows_digest is None:
            import hashlib
            import json

            digest = hashlib.sha256()
            digest.update(
                json.dumps(
                    [self.name, list(self.columns)],
                    ensure_ascii=False,
                    separators=(",", ":"),
                ).encode("utf-8")
            )
            digest.update(b"\x00")
            for row in self.rows:
                digest.update(
                    json.dumps(
                        list(row), ensure_ascii=False, separators=(",", ":")
                    ).encode("utf-8")
                )
                digest.update(b"\x00")
            self._rows_digest = digest
        return self._rows_digest

    def fingerprint(self) -> str:
        """A stable content digest of the table (name, schema, rows, keys).

        Equal tables (as per ``__eq__``) have equal fingerprints across
        processes and platforms; used by :meth:`Catalog.fingerprint` to
        key the service request cache.  Cached -- the table is immutable
        -- and computed from the resumable rows digest, so fingerprinting
        a table grown with :meth:`extended` costs only the new rows.
        """
        if self._fingerprint is None:
            import json

            digest = self._ensure_rows_digest().copy()
            digest.update(
                json.dumps(
                    [list(key) for key in self.keys],
                    ensure_ascii=False,
                    separators=(",", ":"),
                ).encode("utf-8")
            )
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------
    def extended(self, rows: Iterable[Sequence[str]]) -> "Table":
        """A new table with ``rows`` appended -- this table is untouched.

        The copy-on-write growth primitive: existing row tuples are
        shared, and the already-built per-column value index and
        candidate-key row indexes are *patched* with the new rows instead
        of rebuilt, so appending N rows costs O(N x columns), not
        O(total cells).  The result is indistinguishable from
        ``Table(name, columns, old_rows + new_rows, ...)``:

        * declared candidate keys are delta-validated against the new
          rows and raise :class:`KeyConstraintError` when an append
          breaks uniqueness;
        * discovered keys are delta-checked, and only when an append
          breaks one does key discovery re-run over the full data (adding
          rows can only break keys, never create them -- so when every
          old key survives, the discovered key set is provably unchanged);
        * the fingerprint is recomputed lazily (content changed).

        Appending zero rows returns ``self``.
        """
        new_rows = _normalize_rows(self.name, self.columns, rows, start=self.num_rows)
        if not new_rows:
            return self
        clone: "Table" = Table.__new__(Table)
        clone.name = self.name
        clone.columns = self.columns
        clone.rows = self.rows + tuple(new_rows)
        clone._column_index = self._column_index
        clone._keys_declared = self._keys_declared
        clone._max_key_width = self._max_key_width
        clone._fingerprint = None
        clone._data_fingerprint = None
        clone._extends_rows = self.rows
        if self._rows_digest is not None:
            # Resume the streaming hash: only the appended rows are fed.
            import json

            digest = self._rows_digest.copy()
            for row in new_rows:
                digest.update(
                    json.dumps(
                        list(row), ensure_ascii=False, separators=(",", ":")
                    ).encode("utf-8")
                )
                digest.update(b"\x00")
            clone._rows_digest = digest
        else:
            clone._rows_digest = None

        extended_index = self._extend_key_index(new_rows)
        if extended_index is not None:
            clone.keys = self.keys
            clone._key_row_index = extended_index
        else:
            # A discovered key broke: re-discover over the full data and
            # rebuild the key indexes (the only non-delta fallback here).
            from repro.tables.keys import discover_candidate_keys

            clone.keys = discover_candidate_keys(
                clone.columns, clone.rows, max_width=self._max_key_width
            )
            clone._key_row_index = {
                key: clone._build_key_index(key) for key in clone.keys
            }

        if self._value_rows is None:
            clone._value_rows = None
        else:
            patched: Dict[str, Dict[str, Tuple[int, ...]]] = {}
            for position, column in enumerate(self.columns):
                # Gather each value's new row numbers first, then extend
                # its posting once -- repeated values (low-cardinality
                # columns) must not re-copy a growing tuple per row.
                gathered: Dict[str, List[int]] = {}
                for offset, row in enumerate(new_rows):
                    gathered.setdefault(row[position], []).append(
                        self.num_rows + offset
                    )
                postings = dict(self._value_rows[column])
                for value, row_numbers in gathered.items():
                    postings[value] = postings.get(value, ()) + tuple(row_numbers)
                patched[column] = postings
            clone._value_rows = patched

        canonical_maps = getattr(self, "_canonical_maps", None)
        if canonical_maps is None:
            clone._canonical_maps = None
        else:
            # Patch each already-built column map with the appended rows'
            # *new* distinct values (first-seen order), copying only the
            # touched canonical groups -- same COW discipline as the
            # value index above.
            from repro.matching.canonical import canonicalize

            old_values = self._value_rows or {}
            patched_maps: Dict[str, Dict[str, Tuple[str, ...]]] = {}
            for column, mapping in canonical_maps.items():
                position = self._column_index[column]
                known = old_values.get(column)
                if known is None:
                    known = {
                        row[position]: None for row in self.rows
                    }
                additions: List[str] = []
                seen: set = set()
                for row in new_rows:
                    value = row[position]
                    if value not in known and value not in seen:
                        seen.add(value)
                        additions.append(value)
                if not additions:
                    patched_maps[column] = mapping
                    continue
                mapping = dict(mapping)
                for value in additions:
                    canon = canonicalize(value)
                    mapping[canon] = mapping.get(canon, ()) + (value,)
                patched_maps[column] = mapping
            clone._canonical_maps = patched_maps
        return clone

    def _extend_key_index(
        self, new_rows: Sequence[Tuple[str, ...]]
    ) -> Optional[Dict[CandidateKey, Dict[Tuple[str, ...], int]]]:
        """Current key indexes patched with ``new_rows``, or ``None``.

        ``None`` means a *discovered* key lost uniqueness (caller must
        re-discover); a *declared* key losing uniqueness raises, matching
        construction-time validation.  The degenerate last-resort key a
        discovery may emit over duplicate rows is never treated as broken
        (a rebuild would keep it too).
        """
        key_row_index = self._ensure_key_row_index()
        last_resort = (
            not self._keys_declared
            and self.keys == (self.columns,)
            and len(key_row_index[self.columns]) < self.num_rows
        )
        extended: Dict[CandidateKey, Dict[Tuple[str, ...], int]] = {}
        for key in self.keys:
            mapping = dict(key_row_index[key])
            positions = [self._column_index[c] for c in key]
            for offset, row in enumerate(new_rows):
                row_number = self.num_rows + offset
                values = tuple(row[p] for p in positions)
                if values in mapping and not last_resort:
                    if self._keys_declared:
                        raise KeyConstraintError(
                            f"table {self.name!r}: candidate key {key} is not "
                            f"unique (rows {mapping[values]} and {row_number} "
                            f"share {values})"
                        )
                    return None
                mapping[values] = row_number
            extended[key] = mapping
        return extended

    def data_fingerprint(self, num_rows: Optional[int] = None) -> str:
        """Digest of name, columns and the first ``num_rows`` rows only.

        Unlike :meth:`fingerprint` this excludes candidate keys, which
        may legitimately drift when appends re-discover them; and it can
        be taken over a row *prefix*.  The serving layer uses it to
        decide whether a stored program's table merely **grew** (old
        rows intact as a prefix -- benign, programs keep running) or was
        **rewritten** (refuse with a staleness error).  The full-table
        digest is cached.
        """
        if num_rows is None or num_rows >= self.num_rows:
            if self._data_fingerprint is None:
                self._data_fingerprint = self._hash_rows(self.rows)
            return self._data_fingerprint
        return self._hash_rows(self.rows[: max(0, num_rows)])

    def _hash_rows(self, rows: Sequence[Tuple[str, ...]]) -> str:
        import hashlib
        import json

        payload = json.dumps(
            [self.name, list(self.columns), [list(row) for row in rows]],
            ensure_ascii=False,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def find_rows(
        self, conditions: Dict[str, str], use_index: bool = True
    ) -> List[int]:
        """All row indices whose cells match every ``column: value`` pair.

        Served from the per-column inverted index: the shortest posting
        list is filtered through the others, so a single-key lookup is one
        dict access instead of a full row scan.  ``use_index=False`` runs
        the naive scan (the equivalence oracle, see ``SynthesisConfig``).
        """
        if not use_index:
            return self.find_rows_naive(conditions)
        for column in conditions:
            self.column_position(column)  # raises UnknownColumnError, like
            # the naive scan does, before any empty-posting early return
        if not conditions:
            return list(range(len(self.rows)))
        index = self._ensure_value_rows()
        postings: List[Tuple[int, ...]] = []
        for column, value in conditions.items():
            rows = index[column].get(value)
            if not rows:
                return []
            postings.append(rows)
        postings.sort(key=len)
        smallest = postings[0]
        if len(postings) == 1:
            return list(smallest)
        others = [set(rows) for rows in postings[1:]]
        return [
            row_number
            for row_number in smallest
            if all(row_number in other for other in others)
        ]

    def find_rows_naive(self, conditions: Dict[str, str]) -> List[int]:
        """The full-scan ``find_rows`` (kept as the index's oracle)."""
        positions = [(self.column_position(c), v) for c, v in conditions.items()]
        return [
            row_number
            for row_number, row in enumerate(self.rows)
            if all(row[position] == value for position, value in positions)
        ]

    def lookup(
        self, column: str, conditions: Dict[str, str], use_index: bool = True
    ) -> str:
        """Evaluate a concrete lookup: the paper's Select semantics.

        Returns ``T[column, r]`` when exactly one row ``r`` matches
        ``conditions``, and the empty string otherwise (paper §4.1).
        """
        matches = self.find_rows(conditions, use_index=use_index)
        if len(matches) == 1:
            return self.cell(column, matches[0])
        return ""

    # ------------------------------------------------------------------
    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self._PICKLED_SLOTS}

    def __setstate__(self, state) -> None:
        for slot in self._PICKLED_SLOTS:
            object.__setattr__(self, slot, state[slot])
        self._value_rows = None
        self._canonical_maps = None
        self._fingerprint = None
        self._data_fingerprint = None
        self._rows_digest = None
        self._extends_rows = None

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Table)
            and self.name == other.name
            and self.columns == other.columns
            and self.rows == other.rows
            and self.keys == other.keys
        )

    def __hash__(self) -> int:
        return hash((self.name, self.columns, self.rows, self.keys))

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, columns={list(self.columns)}, "
            f"rows={self.num_rows}, keys={[list(k) for k in self.keys]})"
        )
